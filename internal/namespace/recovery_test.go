package namespace

import (
	"context"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/wal"
)

// seqCreator hands out sequential blob IDs and counts invocations, so
// tests can assert that recovery never re-mints blobs.
type seqCreator struct {
	next  blob.ID
	calls int
}

func (c *seqCreator) create(ctx context.Context, blockSize int64, replication int) (blob.ID, error) {
	c.calls++
	c.next++
	return c.next, nil
}

func openNS(t *testing.T, dir string, cr *seqCreator) *State {
	t.Helper()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Recover(log, cr.create)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseWAL() })
	return s
}

func TestNamespaceRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cr := &seqCreator{}
	ctx := context.Background()
	s := openNS(t, dir, cr)

	idA, err := s.CreateFile(ctx, "/docs/a.txt", 4096, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	idB, _ := s.CreateFile(ctx, "/docs/b.txt", 4096, 1, false)
	if err := s.Mkdirs("/empty/dir"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("/docs/b.txt", "/moved/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("/docs/a.txt", false); err != nil {
		t.Fatal(err)
	}
	// A third file overwritten: its first blob joins the orphan list.
	s.CreateFile(ctx, "/c.txt", 4096, 1, false)
	idC2, _ := s.CreateFile(ctx, "/c.txt", 4096, 1, true)
	callsBefore := cr.calls
	s.CloseWAL()

	r := openNS(t, dir, cr)
	if cr.calls != callsBefore {
		t.Fatalf("recovery invoked the blob creator %d time(s); records must carry blob IDs", cr.calls-callsBefore)
	}
	if _, err := r.GetFile("/docs/a.txt"); err != fs.ErrNotFound {
		t.Errorf("deleted file resurrected: %v", err)
	}
	if id, err := r.GetFile("/moved/b.txt"); err != nil || id != idB {
		t.Errorf("renamed file = (%d, %v), want (%d, nil)", id, err, idB)
	}
	if id, err := r.GetFile("/c.txt"); err != nil || id != idC2 {
		t.Errorf("overwritten file = (%d, %v), want (%d, nil)", id, err, idC2)
	}
	if e, err := r.StatEntry("/empty/dir"); err != nil || !e.IsDir {
		t.Errorf("mkdirs lost: (%+v, %v)", e, err)
	}
	// Orphans from the delete and the overwrite survived recovery.
	orphans := r.Orphaned()
	if len(orphans) != 2 {
		t.Fatalf("orphans after recovery = %v, want the deleted %d and overwritten blob", orphans, idA)
	}
}

func TestNamespaceDrainNotReplayed(t *testing.T) {
	dir := t.TempDir()
	cr := &seqCreator{}
	ctx := context.Background()
	s := openNS(t, dir, cr)
	s.CreateFile(ctx, "/x", 4096, 1, false)
	s.Delete("/x", false)
	if got := s.Orphaned(); len(got) != 1 {
		t.Fatalf("drain = %v", got)
	}
	s.CloseWAL()

	r := openNS(t, dir, cr)
	if got := r.Orphaned(); len(got) != 0 {
		t.Errorf("recovered namespace re-offered drained orphans: %v", got)
	}
}

func TestNamespaceSnapshotCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	cr := &seqCreator{}
	ctx := context.Background()
	s := openNS(t, dir, cr)
	for _, p := range []string{"/a/1", "/a/2", "/b/3"} {
		if _, err := s.CreateFile(ctx, p, 4096, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("/a/2", false) // leaves one orphan un-drained
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot suffix.
	id4, _ := s.CreateFile(ctx, "/b/4", 4096, 1, false)
	s.CloseWAL()

	r := openNS(t, dir, cr)
	if id, err := r.GetFile("/a/1"); err != nil || id != 1 {
		t.Errorf("/a/1 = (%d, %v)", id, err)
	}
	if _, err := r.GetFile("/a/2"); err != fs.ErrNotFound {
		t.Errorf("/a/2 should be deleted, got %v", err)
	}
	if id, err := r.GetFile("/b/4"); err != nil || id != id4 {
		t.Errorf("/b/4 = (%d, %v), want (%d, nil)", id, err, id4)
	}
	if got := r.Orphaned(); len(got) != 1 {
		t.Errorf("un-drained orphan lost through snapshot: %v", got)
	}
}

func TestNamespaceRecoverIdempotentSecondReplay(t *testing.T) {
	dir := t.TempDir()
	cr := &seqCreator{}
	ctx := context.Background()
	s := openNS(t, dir, cr)
	s.CreateFile(ctx, "/f", 4096, 1, false)
	s.Mkdirs("/d")
	s.Rename("/f", "/d/f")
	s.CloseWAL()

	r := openNS(t, dir, cr)
	// Re-apply the whole log onto the already-recovered state.
	if err := r.log.Replay(func(p []byte, isSnap bool) error {
		if isSnap {
			return r.loadSnapshot(p)
		}
		return r.applyRecord(p)
	}); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if id, err := r.GetFile("/d/f"); err != nil || id != 1 {
		t.Errorf("/d/f after double replay = (%d, %v), want (1, nil)", id, err)
	}
	if got := r.Orphaned(); len(got) != 0 {
		t.Errorf("double replay fabricated orphans: %v", got)
	}
}
