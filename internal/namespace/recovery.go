package namespace

import (
	"errors"
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/wal"
	"blobseer/internal/wire"
)

// WAL record types for namespace mutations. Each record carries the
// mutation's *outcome* — critically, the blob ID the creator returned
// for a CreateFile — so replay rebuilds the tree without re-invoking
// the version manager (which would mint fresh blobs and orphan every
// file's data).
const (
	recNSCreate uint8 = iota + 1
	recNSMkdirs
	recNSDelete
	recNSRename
	recNSDrain
)

// ErrNoWAL is returned by snapshot/status operations on a namespace
// running without a write-ahead log.
var ErrNoWAL = errors.New("namespace: no write-ahead log attached")

// Recover rebuilds a namespace State from the log and attaches it, so
// subsequent mutations are journaled. An empty log yields an empty
// namespace. Replay is idempotent — re-applying a record that is
// already reflected in the tree is a no-op — so recovering twice from
// the same log converges on the same tree.
func Recover(log *wal.Log, creator BlobCreator) (*State, error) {
	s := NewState(creator)
	err := log.Replay(func(p []byte, isSnap bool) error {
		if isSnap {
			return s.loadSnapshot(p)
		}
		return s.applyRecord(p)
	})
	if err != nil {
		return nil, fmt.Errorf("namespace: recover: %w", err)
	}
	s.log = log
	return s, nil
}

func (s *State) applyRecord(p []byte) error {
	r := wire.NewReader(p)
	t := r.U8()
	s.mu.Lock()
	defer s.mu.Unlock()
	switch t {
	case recNSCreate:
		path := r.String()
		id := blob.ID(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		dir, err := s.mkdirs(fs.Parent(path))
		if err != nil {
			return err
		}
		name := fs.Base(path)
		if old, ok := dir.children[name]; ok {
			if old.isDir {
				return fmt.Errorf("namespace: create record for %q over a directory", path)
			}
			if old.blobID == id {
				return nil // already applied
			}
			s.orphaned = append(s.orphaned, old.blobID) // overwrite
		}
		dir.children[name] = &entry{name: name, blobID: id}
	case recNSMkdirs:
		path := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if _, err := s.mkdirs(path); err != nil {
			return err
		}
	case recNSDelete:
		path := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		e, parent, name := s.lookup(path)
		if e == nil || parent == nil {
			return nil // already applied
		}
		var collect func(*entry)
		collect = func(en *entry) {
			if !en.isDir {
				s.orphaned = append(s.orphaned, en.blobID)
				return
			}
			for _, ch := range en.children {
				collect(ch)
			}
		}
		collect(e)
		delete(parent.children, name)
	case recNSRename:
		src := r.String()
		dst := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		e, parent, name := s.lookup(src)
		if e == nil || parent == nil {
			return nil // already applied (or applied then src re-created)
		}
		dstDir, err := s.mkdirs(fs.Parent(dst))
		if err != nil {
			return err
		}
		dstName := fs.Base(dst)
		if _, exists := dstDir.children[dstName]; exists {
			return nil // already applied
		}
		delete(parent.children, name)
		e.name = dstName
		dstDir.children[dstName] = e
	case recNSDrain:
		// The GC consumed the orphan list at this point in history;
		// dropping it on replay stops recovery from re-offering blobs
		// that were already collected.
		s.orphaned = nil
	default:
		return fmt.Errorf("namespace: unknown WAL record type %d", t)
	}
	return nil
}

// appendLocked journals one record if a log is attached; callers hold
// s.mu so log order matches mutation order. Namespace mutations are
// low-rate and all client-acknowledged, so every record is fsynced.
func (s *State) appendLocked(p []byte) error {
	if s.log == nil {
		return nil
	}
	return s.log.AppendSync(p)
}

func encodePath(t uint8, path string) []byte {
	b := wire.NewBuffer(16 + len(path))
	b.U8(t)
	b.String(path)
	return b.Bytes()
}

// encodeSnapshotLocked serializes the tree (pre-order) and the orphan
// list. Callers hold s.mu.
func (s *State) encodeSnapshotLocked() []byte {
	b := wire.NewBuffer(256)
	var walk func(e *entry)
	walk = func(e *entry) {
		b.String(e.name)
		b.Bool(e.isDir)
		b.U64(uint64(e.blobID))
		if e.isDir {
			b.U32(uint32(len(e.children)))
			for _, ch := range e.children {
				walk(ch)
			}
		}
	}
	walk(s.root)
	b.U32(uint32(len(s.orphaned)))
	for _, id := range s.orphaned {
		b.U64(uint64(id))
	}
	return b.Bytes()
}

func (s *State) loadSnapshot(p []byte) error {
	r := wire.NewReader(p)
	var walk func() (*entry, error)
	walk = func() (*entry, error) {
		e := &entry{name: r.String(), isDir: r.Bool(), blobID: blob.ID(r.U64())}
		if e.isDir {
			n := r.U32()
			if r.Err() != nil || n > uint32(r.Remaining()) {
				return nil, errors.New("namespace: corrupt snapshot")
			}
			e.children = make(map[string]*entry, n)
			for i := uint32(0); i < n; i++ {
				ch, err := walk()
				if err != nil {
					return nil, err
				}
				e.children[ch.name] = ch
			}
		}
		return e, nil
	}
	root, err := walk()
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("namespace: corrupt snapshot: %w", err)
	}
	n := r.U32()
	if r.Err() != nil || n > uint32(r.Remaining()) {
		return errors.New("namespace: corrupt snapshot (orphan run)")
	}
	orphans := make([]blob.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		orphans = append(orphans, blob.ID(r.U64()))
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("namespace: corrupt snapshot: %w", err)
	}
	s.mu.Lock()
	s.root = root
	s.orphaned = orphans
	s.mu.Unlock()
	return nil
}

// SnapshotNow serializes the tree as a WAL snapshot and compacts the
// log behind it. The lock is held across the write so the snapshot is
// exactly consistent with the log prefix it supersedes.
func (s *State) SnapshotNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return ErrNoWAL
	}
	return s.log.SaveSnapshot(s.encodeSnapshotLocked())
}

// WALStatus reports the attached log's shape.
func (s *State) WALStatus() (wal.Status, error) {
	s.mu.RLock()
	log := s.log
	s.mu.RUnlock()
	if log == nil {
		return wal.Status{}, ErrNoWAL
	}
	return log.Status(), nil
}

// CloseWAL flushes and closes the attached log (graceful shutdown).
func (s *State) CloseWAL() error {
	s.mu.Lock()
	log := s.log
	s.log = nil
	s.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}
