// Package namespace implements the BSFS namespace manager (Section
// IV-A): a centralized service mapping a classical hierarchical
// directory structure onto BlobSeer's flat BLOB space. It is involved
// only in file open/create/delete/rename — actual data access goes
// straight to BlobSeer, preserving the decentralized metadata benefits.
package namespace

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
	"blobseer/internal/wire"
)

// RPC method numbers.
const (
	mCreateFile uint16 = iota + 1
	mGetFile
	mMkdirs
	mDelete
	mRename
	mList
	mStatEntry
)

// methodNames maps method numbers to operation names (method - 1).
var methodNames = [mStatEntry]string{
	"create_file", "get_file", "mkdirs", "delete", "rename", "list", "stat",
}

// MethodName maps an RPC method number to its operation name, for the
// server-side tracer.
func MethodName(m uint16) string {
	if m >= 1 && m <= mStatEntry {
		return methodNames[m-1]
	}
	return "unknown"
}

type entry struct {
	name     string
	isDir    bool
	blobID   blob.ID
	children map[string]*entry
}

// BlobCreator allocates the BLOB backing a new file. Production wiring
// uses the version manager; tests may stub it.
type BlobCreator func(ctx context.Context, blockSize int64, replication int) (blob.ID, error)

// VMBlobCreator builds a BlobCreator over a version-manager client
// (or shard Router — new files then spread across the control plane).
func VMBlobCreator(vm vmanager.API) BlobCreator {
	return func(ctx context.Context, blockSize int64, replication int) (blob.ID, error) {
		m, err := vm.CreateBlob(ctx, blockSize, replication)
		if err != nil {
			return 0, err
		}
		return m.ID, nil
	}
}

// State is the namespace tree. Safe for concurrent use.
type State struct {
	mu       sync.RWMutex
	root     *entry
	creator  BlobCreator
	orphaned []blob.ID // blobs unlinked by delete/overwrite (GC candidates)
	// log, when non-nil, journals every mutation for crash recovery
	// (see recovery.go). Attached by Recover; nil keeps the historical
	// purely-in-memory behavior.
	log *wal.Log
}

// NewState returns an empty namespace whose new files get blobs from
// creator.
func NewState(creator BlobCreator) *State {
	return &State{
		root:    &entry{name: "", isDir: true, children: map[string]*entry{}},
		creator: creator,
	}
}

// lookup walks to the entry at path. Returns (entry, parent, name).
func (s *State) lookup(path string) (*entry, *entry, string) {
	parts := fs.Split(path)
	cur := s.root
	var parent *entry
	name := ""
	for _, p := range parts {
		if !cur.isDir {
			return nil, nil, ""
		}
		next, ok := cur.children[p]
		if !ok {
			return nil, cur, p
		}
		parent = cur
		name = p
		cur = next
	}
	if len(parts) == 0 {
		return cur, nil, ""
	}
	return cur, parent, name
}

// mkdirs creates missing directories along path, returning the final
// directory entry.
func (s *State) mkdirs(path string) (*entry, error) {
	cur := s.root
	for _, p := range fs.Split(path) {
		if !cur.isDir {
			return nil, fs.ErrNotDir
		}
		next, ok := cur.children[p]
		if !ok {
			next = &entry{name: p, isDir: true, children: map[string]*entry{}}
			cur.children[p] = next
		}
		cur = next
	}
	if !cur.isDir {
		return nil, fs.ErrNotDir
	}
	return cur, nil
}

// CreateFile maps a new file to a fresh BLOB, creating parent
// directories implicitly. With overwrite, an existing file is remapped
// to a new BLOB (the old one is orphaned for GC).
func (s *State) CreateFile(ctx context.Context, path string, blockSize int64, replication int, overwrite bool) (blob.ID, error) {
	path = fs.Clean(path)
	if path == "/" {
		return 0, fs.ErrIsDir
	}
	// Allocate the blob before taking the lock (RPC under a mutex
	// would serialize unrelated namespace traffic).
	id, err := s.creator(ctx, blockSize, replication)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, err := s.mkdirs(fs.Parent(path))
	if err != nil {
		return 0, err
	}
	name := fs.Base(path)
	if old, ok := dir.children[name]; ok {
		if old.isDir {
			return 0, fs.ErrIsDir
		}
		if !overwrite {
			return 0, fs.ErrExists
		}
		s.orphaned = append(s.orphaned, old.blobID)
	}
	dir.children[name] = &entry{name: name, blobID: id}
	// The record carries the allocated blob ID: replay must re-link
	// the same blob, never re-invoke the creator.
	b := wire.NewBuffer(16 + len(path))
	b.U8(recNSCreate)
	b.String(path)
	b.U64(uint64(id))
	if err := s.appendLocked(b.Bytes()); err != nil {
		return 0, err
	}
	return id, nil
}

// GetFile resolves a file path to its BLOB.
func (s *State) GetFile(path string) (blob.ID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, _, _ := s.lookup(fs.Clean(path))
	if e == nil {
		return 0, fs.ErrNotFound
	}
	if e.isDir {
		return 0, fs.ErrIsDir
	}
	return e.blobID, nil
}

// Mkdirs creates a directory chain.
func (s *State) Mkdirs(path string) error {
	path = fs.Clean(path)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.mkdirs(path); err != nil {
		return err
	}
	return s.appendLocked(encodePath(recNSMkdirs, path))
}

// Delete unlinks a file or directory. Non-empty directories require
// recursive. It returns the blob IDs orphaned by the deletion.
func (s *State) Delete(path string, recursive bool) ([]blob.ID, error) {
	path = fs.Clean(path)
	if path == "/" {
		return nil, fs.ErrIsDir
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, parent, name := s.lookup(path)
	if e == nil || parent == nil {
		return nil, fs.ErrNotFound
	}
	if e.isDir && len(e.children) > 0 && !recursive {
		return nil, fs.ErrNotEmpty
	}
	var orphans []blob.ID
	var collect func(*entry)
	collect = func(en *entry) {
		if !en.isDir {
			orphans = append(orphans, en.blobID)
			return
		}
		for _, ch := range en.children {
			collect(ch)
		}
	}
	collect(e)
	delete(parent.children, name)
	s.orphaned = append(s.orphaned, orphans...)
	if err := s.appendLocked(encodePath(recNSDelete, path)); err != nil {
		return nil, err
	}
	return orphans, nil
}

// Rename moves a file or directory to dst (whose parent must resolve).
func (s *State) Rename(src, dst string) error {
	src, dst = fs.Clean(src), fs.Clean(dst)
	if src == "/" || dst == "/" {
		return fs.ErrIsDir
	}
	if dst == src || strings.HasPrefix(dst, src+"/") {
		return errors.New("namespace: cannot rename a path into itself")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, parent, name := s.lookup(src)
	if e == nil || parent == nil {
		return fs.ErrNotFound
	}
	dstDir, err := s.mkdirs(fs.Parent(dst))
	if err != nil {
		return err
	}
	dstName := fs.Base(dst)
	if _, exists := dstDir.children[dstName]; exists {
		return fs.ErrExists
	}
	delete(parent.children, name)
	e.name = dstName
	dstDir.children[dstName] = e
	b := wire.NewBuffer(24 + len(src) + len(dst))
	b.U8(recNSRename)
	b.String(src)
	b.String(dst)
	return s.appendLocked(b.Bytes())
}

// Entry is one listing row.
type Entry struct {
	Name  string
	IsDir bool
	Blob  blob.ID
}

// List enumerates a directory in name order.
func (s *State) List(path string) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, _, _ := s.lookup(fs.Clean(path))
	if e == nil {
		return nil, fs.ErrNotFound
	}
	if !e.isDir {
		return nil, fs.ErrNotDir
	}
	out := make([]Entry, 0, len(e.children))
	for _, ch := range e.children {
		out = append(out, Entry{Name: ch.name, IsDir: ch.isDir, Blob: ch.blobID})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// StatEntry reports whether path exists and what it is.
func (s *State) StatEntry(path string) (Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, _, _ := s.lookup(fs.Clean(path))
	if e == nil {
		return Entry{}, fs.ErrNotFound
	}
	return Entry{Name: e.name, IsDir: e.isDir, Blob: e.blobID}, nil
}

// Orphaned drains the accumulated orphan list (GC integration point).
// The drain is journaled so a recovered namespace does not re-offer
// blobs the GC already collected.
func (s *State) Orphaned() []blob.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.orphaned
	if len(out) == 0 {
		return nil
	}
	if err := s.appendLocked([]byte{recNSDrain}); err != nil {
		// Keep the list: better to re-offer orphans after a crash
		// (GC of a missing blob is a no-op) than to leak them.
		return nil
	}
	s.orphaned = nil
	return out
}
