package namespace

import (
	"context"
	"errors"
	"sync"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/rpc"
)

// counterCreator is a BlobCreator handing out sequential IDs.
func counterCreator() BlobCreator {
	var mu sync.Mutex
	var next blob.ID
	return func(ctx context.Context, blockSize int64, replication int) (blob.ID, error) {
		mu.Lock()
		defer mu.Unlock()
		next++
		return next, nil
	}
}

func newNS() *State { return NewState(counterCreator()) }

func TestCreateAndGetFile(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	id, err := s.CreateFile(ctx, "/data/input/part-0", 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.GetFile("/data/input/part-0")
	if err != nil || got != id {
		t.Fatalf("GetFile = %d, %v", got, err)
	}
	// Parents were created implicitly.
	e, err := s.StatEntry("/data/input")
	if err != nil || !e.IsDir {
		t.Errorf("parent dir = %+v, %v", e, err)
	}
	if _, err := s.GetFile("/nope"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("missing file err = %v", err)
	}
	if _, err := s.GetFile("/data/input"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("dir-as-file err = %v", err)
	}
}

func TestCreateExclusiveAndOverwrite(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	id1, _ := s.CreateFile(ctx, "/f", 64, 1, false)
	if _, err := s.CreateFile(ctx, "/f", 64, 1, false); !errors.Is(err, fs.ErrExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	id2, err := s.CreateFile(ctx, "/f", 64, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Error("overwrite did not remap to a new blob")
	}
	orphans := s.Orphaned()
	if len(orphans) != 1 || orphans[0] != id1 {
		t.Errorf("orphans = %v", orphans)
	}
	// Creating over a directory fails.
	s.Mkdirs("/dir")
	if _, err := s.CreateFile(ctx, "/dir", 64, 1, true); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("create-over-dir err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	s.CreateFile(ctx, "/d/a", 64, 1, false)
	s.CreateFile(ctx, "/d/sub/b", 64, 1, false)

	if _, err := s.Delete("/d", false); !errors.Is(err, fs.ErrNotEmpty) {
		t.Errorf("non-recursive delete of non-empty dir err = %v", err)
	}
	orphans, err := s.Delete("/d", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 2 {
		t.Errorf("orphans = %v", orphans)
	}
	if _, err := s.GetFile("/d/a"); !errors.Is(err, fs.ErrNotFound) {
		t.Error("file survives recursive delete")
	}
	if _, err := s.Delete("/ghost", false); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("delete missing err = %v", err)
	}
	if _, err := s.Delete("/", true); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("delete root err = %v", err)
	}
}

func TestRename(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	id, _ := s.CreateFile(ctx, "/a/f", 64, 1, false)
	if err := s.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetFile("/b/g")
	if err != nil || got != id {
		t.Fatalf("after rename GetFile = %d, %v", got, err)
	}
	if _, err := s.GetFile("/a/f"); !errors.Is(err, fs.ErrNotFound) {
		t.Error("source survives rename")
	}
	// Rename directory moves the subtree.
	s.CreateFile(ctx, "/dir/x", 64, 1, false)
	if err := s.Rename("/dir", "/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetFile("/moved/x"); err != nil {
		t.Errorf("subtree not moved: %v", err)
	}
	// Destination conflicts are rejected.
	s.CreateFile(ctx, "/c1", 64, 1, false)
	s.CreateFile(ctx, "/c2", 64, 1, false)
	if err := s.Rename("/c1", "/c2"); !errors.Is(err, fs.ErrExists) {
		t.Errorf("rename onto existing err = %v", err)
	}
	// Renaming into one's own subtree is rejected.
	if err := s.Rename("/moved", "/moved/inside"); err == nil {
		t.Error("rename into own subtree succeeded")
	}
}

func TestList(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	s.CreateFile(ctx, "/dir/b", 64, 1, false)
	s.CreateFile(ctx, "/dir/a", 64, 1, false)
	s.Mkdirs("/dir/sub")
	entries, err := s.List("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Name != "a" || entries[1].Name != "b" || entries[2].Name != "sub" {
		t.Errorf("List = %+v", entries)
	}
	if !entries[2].IsDir {
		t.Error("sub not a dir")
	}
	if _, err := s.List("/dir/a"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("List of file err = %v", err)
	}
	if _, err := s.List("/ghost"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("List missing err = %v", err)
	}
}

func TestServiceOverRPC(t *testing.T) {
	n := rpc.NewInprocNetwork()
	svc := NewService(newNS())
	lis, err := n.Listen("namespace")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()
	pool := rpc.NewPool(n.Dial)
	defer pool.Close()
	c := NewClient(pool, "namespace")
	ctx := context.Background()

	id, err := c.CreateFile(ctx, "/x/y", 64, 1, false)
	if err != nil || id == 0 {
		t.Fatalf("CreateFile = %d, %v", id, err)
	}
	got, err := c.GetFile(ctx, "/x/y")
	if err != nil || got != id {
		t.Fatalf("GetFile = %d, %v", got, err)
	}
	if _, err := c.GetFile(ctx, "/missing"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("sentinel across RPC = %v", err)
	}
	if err := c.Mkdirs(ctx, "/m/k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(ctx, "/x/y", "/m/k/z"); err != nil {
		t.Fatal(err)
	}
	entries, err := c.List(ctx, "/m/k")
	if err != nil || len(entries) != 1 || entries[0].Name != "z" {
		t.Fatalf("List = %+v, %v", entries, err)
	}
	e, err := c.StatEntry(ctx, "/m/k/z")
	if err != nil || e.IsDir || e.Blob != id {
		t.Fatalf("StatEntry = %+v, %v", e, err)
	}
	orphans, err := c.Delete(ctx, "/m", true)
	if err != nil || len(orphans) != 1 || orphans[0] != id {
		t.Fatalf("Delete = %v, %v", orphans, err)
	}
}

func TestConcurrentCreatesDistinct(t *testing.T) {
	s := newNS()
	ctx := context.Background()
	var wg sync.WaitGroup
	ids := make([]blob.ID, 32)
	okCount := 0
	var mu sync.Mutex
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.CreateFile(ctx, "/contested", 64, 1, false)
			if err == nil {
				mu.Lock()
				okCount++
				ids[i] = id
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if okCount != 1 {
		t.Errorf("%d exclusive creates succeeded, want 1", okCount)
	}
}
