package namespace

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
)

// model is a flat reference namespace: path -> blob ID for files,
// path -> true for directories. It replays the same operations with
// straightforward map manipulation; the State must agree with it after
// every step.
type model struct {
	files map[string]blob.ID
	dirs  map[string]bool
}

func newModel() *model {
	return &model{files: map[string]blob.ID{}, dirs: map[string]bool{"/": true}}
}

func (m *model) mkParents(p string) {
	for dir := fs.Parent(p); ; dir = fs.Parent(dir) {
		m.dirs[dir] = true
		if dir == "/" {
			break
		}
	}
}

func (m *model) create(p string, id blob.ID, overwrite bool) error {
	p = fs.Clean(p)
	if m.dirs[p] {
		return fs.ErrIsDir
	}
	if _, ok := m.files[p]; ok && !overwrite {
		return fs.ErrExists
	}
	// A path component that is a file blocks implicit mkdirs.
	for dir := fs.Parent(p); dir != "/"; dir = fs.Parent(dir) {
		if _, ok := m.files[dir]; ok {
			return fs.ErrNotDir
		}
	}
	m.mkParents(p)
	m.files[p] = id
	return nil
}

func (m *model) mkdirs(p string) error {
	p = fs.Clean(p)
	if _, ok := m.files[p]; ok {
		return fs.ErrNotDir
	}
	for dir := fs.Parent(p); dir != "/"; dir = fs.Parent(dir) {
		if _, ok := m.files[dir]; ok {
			return fs.ErrNotDir
		}
	}
	m.dirs[p] = true
	m.mkParents(p)
	return nil
}

func (m *model) children(p string) []string {
	prefix := p
	if prefix != "/" {
		prefix += "/"
	} else {
		prefix = "/"
	}
	var out []string
	seen := map[string]bool{}
	for f := range m.files {
		if strings.HasPrefix(f, prefix) && f != p {
			rest := strings.TrimPrefix(f, prefix)
			name := strings.SplitN(rest, "/", 2)[0]
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) && d != p {
			rest := strings.TrimPrefix(d, prefix)
			name := strings.SplitN(rest, "/", 2)[0]
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (m *model) delete(p string, recursive bool) error {
	p = fs.Clean(p)
	if _, ok := m.files[p]; ok {
		delete(m.files, p)
		return nil
	}
	if !m.dirs[p] {
		return fs.ErrNotFound
	}
	if p == "/" && !recursive {
		return fs.ErrNotEmpty
	}
	kids := m.children(p)
	if len(kids) > 0 && !recursive {
		return fs.ErrNotEmpty
	}
	prefix := p + "/"
	for f := range m.files {
		if strings.HasPrefix(f, prefix) {
			delete(m.files, f)
		}
	}
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	if p != "/" {
		delete(m.dirs, p)
	}
	return nil
}

// TestNamespaceMatchesModel drives random create/mkdirs/delete/list
// schedules against both the real namespace state and the flat model,
// comparing listings and lookups after every operation.
func TestNamespaceMatchesModel(t *testing.T) {
	paths := []string{
		"/a", "/b", "/a/x", "/a/y", "/a/x/1", "/a/x/2", "/b/z", "/c/d/e",
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := newNS()
		m := newModel()
		ctx := context.Background()

		for step := 0; step < 200; step++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(4) {
			case 0: // create file
				overwrite := rng.Intn(2) == 0
				id, gotErr := s.CreateFile(ctx, p, 64, 1, overwrite)
				wantErr := m.create(p, id, overwrite)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d step %d: create %s overwrite=%v: real %v, model %v",
						seed, step, p, overwrite, gotErr, wantErr)
				}
				if gotErr != nil && wantErr != nil && !sameClass(gotErr, wantErr) {
					t.Fatalf("seed %d step %d: create %s error class: real %v, model %v",
						seed, step, p, gotErr, wantErr)
				}
			case 1: // mkdirs
				gotErr := s.Mkdirs(p)
				wantErr := m.mkdirs(p)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d step %d: mkdirs %s: real %v, model %v", seed, step, p, gotErr, wantErr)
				}
			case 2: // delete
				recursive := rng.Intn(2) == 0
				_, gotErr := s.Delete(p, recursive)
				wantErr := m.delete(p, recursive)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d step %d: delete %s recursive=%v: real %v, model %v",
						seed, step, p, recursive, gotErr, wantErr)
				}
			case 3: // verify a random directory listing
				dir := fs.Parent(p)
				gotEntries, gotErr := s.List(dir)
				if gotErr != nil {
					if !m.dirs[dir] {
						continue // both agree it's unlistable
					}
					t.Fatalf("seed %d step %d: list %s failed: %v", seed, step, dir, gotErr)
				}
				var got []string
				for _, e := range gotEntries {
					got = append(got, e.Name)
				}
				sort.Strings(got)
				want := m.children(dir)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("seed %d step %d: list %s: real %v, model %v", seed, step, dir, got, want)
				}
			}

			// Every model file must resolve; every model dir must stat.
			for f := range m.files {
				if _, err := s.GetFile(f); err != nil {
					t.Fatalf("seed %d step %d: model file %s missing: %v", seed, step, f, err)
				}
			}
			for d := range m.dirs {
				e, err := s.StatEntry(d)
				if err != nil || !e.IsDir {
					t.Fatalf("seed %d step %d: model dir %s wrong: %+v, %v", seed, step, d, e, err)
				}
			}
		}
	}
}

// sameClass checks two errors wrap the same fs sentinel.
func sameClass(a, b error) bool {
	for _, sentinel := range []error{
		fs.ErrNotFound, fs.ErrExists, fs.ErrIsDir, fs.ErrNotDir, fs.ErrNotEmpty,
	} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return true
}
