package namespace

import (
	"context"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/metrics"
	"blobseer/internal/rpc"
	"blobseer/internal/wire"
)

// Service is the RPC shell around State.
type Service struct {
	state *State
	reg   *metrics.Registry
}

// NewService wraps state.
func NewService(state *State) *Service {
	return &Service{state: state, reg: metrics.NewRegistry()}
}

// State exposes the core (tests).
func (s *Service) State() *State { return s.state }

// Metrics exposes the namespace registry (per-op counts, error
// counts, latency histograms) for HTTP export.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// timed wraps a handler with a per-op counter, error counter, and
// latency histogram.
func (s *Service) timed(name string, fn rpc.HandlerFunc) rpc.HandlerFunc {
	ops := s.reg.Counter("ops_" + name)
	errs := s.reg.Counter("errors_" + name)
	lat := s.reg.Histogram("latency_" + name)
	return func(ctx context.Context, p []byte) ([]byte, error) {
		ops.Inc()
		t0 := time.Now()
		resp, err := fn(ctx, p)
		lat.ObserveSince(t0)
		if err != nil {
			errs.Inc()
		}
		return resp, err
	}
}

// Mux returns the RPC dispatch table.
func (s *Service) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mCreateFile, s.timed("create_file", s.handleCreateFile))
	m.Handle(mGetFile, s.timed("get_file", s.handleGetFile))
	m.Handle(mMkdirs, s.timed("mkdirs", s.handleMkdirs))
	m.Handle(mDelete, s.timed("delete", s.handleDelete))
	m.Handle(mRename, s.timed("rename", s.handleRename))
	m.Handle(mList, s.timed("list", s.handleList))
	m.Handle(mStatEntry, s.timed("stat", s.handleStatEntry))
	return m
}

func (s *Service) handleCreateFile(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	blockSize := r.I64()
	replication := int(r.U32())
	overwrite := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	id, err := s.state.CreateFile(ctx, path, blockSize, replication, overwrite)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	return b.Bytes(), nil
}

func (s *Service) handleGetFile(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	id, err := s.state.GetFile(path)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	return b.Bytes(), nil
}

func (s *Service) handleMkdirs(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.state.Mkdirs(path))
}

func (s *Service) handleDelete(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	recursive := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	orphans, err := s.state.Delete(path, recursive)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(4 + 8*len(orphans))
	b.U32(uint32(len(orphans)))
	for _, id := range orphans {
		b.U64(uint64(id))
	}
	return b.Bytes(), nil
}

func (s *Service) handleRename(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	src := r.String()
	dst := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.state.Rename(src, dst))
}

func (s *Service) handleList(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	entries, err := s.state.List(path)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(64)
	b.U32(uint32(len(entries)))
	for _, e := range entries {
		b.String(e.Name)
		b.Bool(e.IsDir)
		b.U64(uint64(e.Blob))
	}
	return b.Bytes(), nil
}

func (s *Service) handleStatEntry(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	e, err := s.state.StatEntry(path)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(32)
	b.String(e.Name)
	b.Bool(e.IsDir)
	b.U64(uint64(e.Blob))
	return b.Bytes(), nil
}

// Client is the namespace-manager RPC client.
type Client struct {
	pool  *rpc.Pool
	addr  string
	retry rpc.Backoff
}

// NewClient returns a client for the namespace manager at addr.
// Transport failures are retried with rpc.DefaultBackoff; namespace
// mutations are idempotent across a manager restart only in the
// success direction (a retried CreateFile whose first ack was lost
// reports ErrExist), which callers already have to handle.
func NewClient(pool *rpc.Pool, addr string) *Client {
	return &Client{pool: pool, addr: addr, retry: rpc.DefaultBackoff}
}

// SetRetry overrides the client's retry schedule.
func (c *Client) SetRetry(b rpc.Backoff) { c.retry = b }

func (c *Client) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	var resp []byte
	err := rpc.Retry(ctx, c.retry, func(ctx context.Context) error {
		cl, err := c.pool.Get(c.addr)
		if err != nil {
			return err
		}
		resp, err = cl.Call(ctx, m, payload)
		return err
	})
	if err != nil {
		return nil, fs.UnwrapErr(err)
	}
	return resp, nil
}

// CreateFile registers a new file backed by a fresh BLOB.
func (c *Client) CreateFile(ctx context.Context, path string, blockSize int64, replication int, overwrite bool) (blob.ID, error) {
	b := wire.NewBuffer(32)
	b.String(path)
	b.I64(blockSize)
	b.U32(uint32(replication))
	b.Bool(overwrite)
	resp, err := c.call(ctx, mCreateFile, b.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := blob.ID(r.U64())
	return id, r.Err()
}

// GetFile resolves a path to its BLOB.
func (c *Client) GetFile(ctx context.Context, path string) (blob.ID, error) {
	b := wire.NewBuffer(16)
	b.String(path)
	resp, err := c.call(ctx, mGetFile, b.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := blob.ID(r.U64())
	return id, r.Err()
}

// Mkdirs creates a directory chain.
func (c *Client) Mkdirs(ctx context.Context, path string) error {
	b := wire.NewBuffer(16)
	b.String(path)
	_, err := c.call(ctx, mMkdirs, b.Bytes())
	return err
}

// Delete unlinks a path, returning orphaned blob IDs.
func (c *Client) Delete(ctx context.Context, path string, recursive bool) ([]blob.ID, error) {
	b := wire.NewBuffer(20)
	b.String(path)
	b.Bool(recursive)
	resp, err := c.call(ctx, mDelete, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]blob.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, blob.ID(r.U64()))
	}
	return out, r.Err()
}

// Rename moves a path.
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	b := wire.NewBuffer(32)
	b.String(src)
	b.String(dst)
	_, err := c.call(ctx, mRename, b.Bytes())
	return err
}

// List enumerates a directory.
func (c *Client) List(ctx context.Context, path string) ([]Entry, error) {
	b := wire.NewBuffer(16)
	b.String(path)
	resp, err := c.call(ctx, mList, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, Entry{Name: r.String(), IsDir: r.Bool(), Blob: blob.ID(r.U64())})
	}
	return out, r.Err()
}

// StatEntry describes one path.
func (c *Client) StatEntry(ctx context.Context, path string) (Entry, error) {
	b := wire.NewBuffer(16)
	b.String(path)
	resp, err := c.call(ctx, mStatEntry, b.Bytes())
	if err != nil {
		return Entry{}, err
	}
	r := wire.NewReader(resp)
	e := Entry{Name: r.String(), IsDir: r.Bool(), Blob: blob.ID(r.U64())}
	return e, r.Err()
}
