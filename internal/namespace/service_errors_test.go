package namespace

import (
	"context"
	"errors"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/rpc"
)

// startService serves a namespace State over an inproc network and
// returns a connected client plus the raw pool (for malformed-frame
// tests that bypass the typed client).
func startService(t *testing.T) (*Client, *rpc.Pool) {
	t.Helper()
	st := NewState(func(ctx context.Context, blockSize int64, replication int) (blob.ID, error) {
		return 1, nil
	})
	n := rpc.NewInprocNetwork()
	lis, err := n.Listen("ns")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(NewService(st).Mux())
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	pool := rpc.NewPool(n.Dial)
	t.Cleanup(pool.Close)
	return NewClient(pool, "ns"), pool
}

func TestServiceDuplicateCreate(t *testing.T) {
	c, _ := startService(t)
	ctx := context.Background()
	if _, err := c.CreateFile(ctx, "/f", 4096, 1, false); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreateFile(ctx, "/f", 4096, 1, false)
	if !errors.Is(err, fs.ErrExists) {
		t.Errorf("duplicate create = %v, want fs.ErrExists", err)
	}
	// Creating a file over a directory is ErrIsDir even with overwrite.
	if err := c.Mkdirs(ctx, "/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(ctx, "/dir", 4096, 1, true); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("create over directory = %v, want fs.ErrIsDir", err)
	}
}

func TestServiceMissingDelete(t *testing.T) {
	c, _ := startService(t)
	ctx := context.Background()
	if _, err := c.Delete(ctx, "/nope", false); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("delete missing = %v, want fs.ErrNotFound", err)
	}
	// Deleting a non-empty directory without recursive.
	if _, err := c.CreateFile(ctx, "/d/f", 4096, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "/d", false); !errors.Is(err, fs.ErrNotEmpty) {
		t.Errorf("delete non-empty = %v, want fs.ErrNotEmpty", err)
	}
	// Deleting the root is refused.
	if _, err := c.Delete(ctx, "/", true); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("delete root = %v, want fs.ErrIsDir", err)
	}
}

func TestServiceLookupAndRenameErrors(t *testing.T) {
	c, _ := startService(t)
	ctx := context.Background()
	if _, err := c.GetFile(ctx, "/missing"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("get missing = %v, want fs.ErrNotFound", err)
	}
	if err := c.Mkdirs(ctx, "/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile(ctx, "/dir"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("get dir = %v, want fs.ErrIsDir", err)
	}
	if err := c.Rename(ctx, "/missing", "/x"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("rename missing = %v, want fs.ErrNotFound", err)
	}
	if _, err := c.CreateFile(ctx, "/a", 4096, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile(ctx, "/b", 4096, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(ctx, "/a", "/b"); !errors.Is(err, fs.ErrExists) {
		t.Errorf("rename onto existing = %v, want fs.ErrExists", err)
	}
	if _, err := c.List(ctx, "/a"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("list a file = %v, want fs.ErrNotDir", err)
	}
}

// TestServiceMalformedRequests sends truncated/garbage payloads
// straight at the wire and checks the server answers with an error
// frame instead of crashing, wedging, or succeeding.
func TestServiceMalformedRequests(t *testing.T) {
	c, pool := startService(t)
	ctx := context.Background()
	cl, err := pool.Get("ns")
	if err != nil {
		t.Fatal(err)
	}
	methods := []uint16{mCreateFile, mGetFile, mMkdirs, mDelete, mRename, mList, mStatEntry}
	payloads := [][]byte{
		nil,                           // empty
		{0x01},                        // truncated length prefix
		{0xff, 0xff, 0xff, 0xff},      // string length far beyond payload
		{0x00, 0x00, 0x00, 0x02, 'a'}, // promises 2 bytes, carries 1
	}
	for _, m := range methods {
		for _, p := range payloads {
			if _, err := cl.Call(ctx, m, p); err == nil {
				t.Errorf("method %d accepted malformed payload %x", m, p)
			}
		}
	}
	// The connection must still be usable for well-formed requests.
	if _, err := c.CreateFile(ctx, "/after", 4096, 1, false); err != nil {
		t.Fatalf("service wedged after malformed traffic: %v", err)
	}
}
