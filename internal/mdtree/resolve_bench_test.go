package mdtree

import (
	"context"
	"testing"
	"time"

	"blobseer/internal/blob"
)

// simnetStore models the DHT over a network: every round-trip (one Get
// or one multi-Get, regardless of batch size) costs one RTT. It is the
// store the acceptance benchmarks run on — ns/op is then dominated by
// round-trip count, exactly what the batching work optimizes.
type simnetStore struct {
	*MemStore
	rtt time.Duration
}

func (s *simnetStore) Get(ctx context.Context, id NodeID) (Node, error) {
	time.Sleep(s.rtt)
	return s.MemStore.Get(ctx, id)
}

func (s *simnetStore) GetBatch(ctx context.Context, ids []NodeID) (map[NodeID]Node, error) {
	time.Sleep(s.rtt)
	return s.MemStore.GetBatch(ctx, ids)
}

// benchRTT is small enough to keep -benchtime=1x smokes fast and large
// enough to dwarf in-memory map costs.
const benchRTT = 50 * time.Microsecond

const benchBlocks = 64

func benchTree(b *testing.B) (*simnetStore, blob.Meta) {
	b.Helper()
	st := &simnetStore{MemStore: NewMemStore(), rtt: benchRTT}
	_, m := buildBlocks(b, st, benchBlocks)
	return st, m
}

// BenchmarkResolveSequential is the pre-batching baseline: one blocking
// round-trip per visited node.
func BenchmarkResolveSequential(b *testing.B) {
	st, m := benchTree(b)
	seq := &seqBenchStore{inner: st}
	size := int64(benchBlocks) * B
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(context.Background(), seq, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveBatched is the frontier-BFS path: one round-trip per
// tree level.
func BenchmarkResolveBatched(b *testing.B) {
	st, m := benchTree(b)
	size := int64(benchBlocks) * B
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(context.Background(), st, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveCold reads through a NodeCache that never has the
// nodes: batched fetch plus cache insertion overhead.
func BenchmarkResolveCold(b *testing.B) {
	st, m := benchTree(b)
	size := int64(benchBlocks) * B
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewNodeCache(st, 0) // fresh cache: all misses
		if _, err := Resolve(context.Background(), cache, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveWarm re-reads a range whose tree is fully cached:
// zero DHT round-trips (the many-mappers-one-input pattern).
func BenchmarkResolveWarm(b *testing.B) {
	st, m := benchTree(b)
	size := int64(benchBlocks) * B
	cache := NewNodeCache(st, 0)
	if _, err := Resolve(context.Background(), cache, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(context.Background(), cache, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
			b.Fatal(err)
		}
	}
}

// seqBenchStore hides batching from Resolve (distinct from seqStore so
// the benchmarks do not depend on test-only counters).
type seqBenchStore struct{ inner Store }

func (s *seqBenchStore) Put(ctx context.Context, n Node) error { return s.inner.Put(ctx, n) }
func (s *seqBenchStore) Get(ctx context.Context, id NodeID) (Node, error) {
	return s.inner.Get(ctx, id)
}
