package mdtree

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"blobseer/internal/blob"
)

func buildBlocks(t testing.TB, st Store, nBlocks int) (*blob.History, blob.Meta) {
	t.Helper()
	h := &blob.History{}
	m := meta()
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: int64(nBlocks) * B, SizeAfter: int64(nBlocks) * B, Kind: blob.KindAppend})
	if _, err := Build(context.Background(), st, m, h, 1, refs(1, nBlocks, 0)); err != nil {
		t.Fatal(err)
	}
	return h, m
}

func TestCacheWarmReadZeroStoreGets(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	_, m := buildBlocks(t, cache, 16)

	// Build went write-through, so even the cold read is free — wipe the
	// cache to force a real cold pass first.
	cold := NewNodeCache(inner, 0)
	if _, err := Resolve(ctx, cold, m, 1, 16*B, blob.Range{Off: 0, Len: 16 * B}); err != nil {
		t.Fatal(err)
	}
	_, getsAfterCold := inner.Ops()
	if getsAfterCold == 0 {
		t.Fatal("cold resolve touched no store nodes")
	}

	// Warm re-read: every node now cached; zero inner gets.
	ext, err := Resolve(ctx, cold, m, 1, 16*B, blob.Range{Off: 0, Len: 16 * B})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 16 {
		t.Fatalf("warm resolve returned %d extents, want 16", len(ext))
	}
	_, getsAfterWarm := inner.Ops()
	if getsAfterWarm != getsAfterCold {
		t.Errorf("warm resolve issued %d store gets, want 0", getsAfterWarm-getsAfterCold)
	}
	st := cold.Stats()
	if st.Hits == 0 || st.Size == 0 {
		t.Errorf("stats after warm read = %+v", st)
	}
}

func TestCacheWriteThroughMakesReadFree(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	_, m := buildBlocks(t, cache, 8)

	// The writer's own cache was populated by Build's puts: a subsequent
	// read through the same cache touches the store not at all.
	if _, err := Resolve(ctx, cache, m, 1, 8*B, blob.Range{Off: 0, Len: 8 * B}); err != nil {
		t.Fatal(err)
	}
	if _, gets := inner.Ops(); gets != 0 {
		t.Errorf("read after write-through issued %d store gets, want 0", gets)
	}
}

func TestCacheBoundedEviction(t *testing.T) {
	inner := NewMemStore()
	cache := NewNodeCache(inner, 32)
	ctx := context.Background()
	for i := 0; i < 500; i++ {
		n := Node{ID: NodeID{Blob: 1, Version: blob.Version(i + 1), Off: 0, Span: B}, Leaf: true}
		if err := cache.Put(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	// Per-shard capacity is ceil(32/16) = 2, so at most 32 entries total.
	if st.Size > 32 {
		t.Errorf("cache holds %d entries, bound is 32", st.Size)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded after overflow")
	}
	if inner.Len() != 500 {
		t.Errorf("inner store has %d nodes, want 500 (eviction must not delete)", inner.Len())
	}
}

// blockingStore delays Get until released, counting inner fetches —
// proves singleflight dedup.
type blockingStore struct {
	*MemStore
	enter chan struct{} // one token per arrived Get
	gate  chan struct{} // closed to release all Gets
	calls atomic.Int64
}

func (b *blockingStore) Get(ctx context.Context, id NodeID) (Node, error) {
	b.calls.Add(1)
	b.enter <- struct{}{}
	<-b.gate
	return b.MemStore.Get(ctx, id)
}

func TestCacheSingleflightDedupsConcurrentMisses(t *testing.T) {
	ctx := context.Background()
	mem := NewMemStore()
	id := NodeID{Blob: 1, Version: 1, Off: 0, Span: B}
	if err := mem.Put(ctx, Node{ID: id, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	bs := &blockingStore{MemStore: mem, enter: make(chan struct{}, 64), gate: make(chan struct{})}
	cache := NewNodeCache(bs, 0)

	const readers = 32
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cache.Get(ctx, id)
		}(i)
	}
	<-bs.enter // exactly one fetch reached the store
	close(bs.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if got := bs.calls.Load(); got != 1 {
		t.Errorf("%d inner fetches for %d concurrent misses, want 1", got, readers)
	}
}

// cancelOwnerStore fails the first Get with its caller's context error
// (once that context is canceled) and serves normally afterwards.
type cancelOwnerStore struct {
	*MemStore
	calls   atomic.Int64
	started chan struct{}
}

func (s *cancelOwnerStore) Get(ctx context.Context, id NodeID) (Node, error) {
	if s.calls.Add(1) == 1 {
		close(s.started)
		<-ctx.Done()
		return Node{}, ctx.Err()
	}
	return s.MemStore.Get(ctx, id)
}

func TestCacheJoinerSurvivesOwnerCancellation(t *testing.T) {
	// A canceled flight owner must not fail joiners whose own contexts
	// are live: they retry the fetch themselves.
	mem := NewMemStore()
	id := NodeID{Blob: 1, Version: 1, Off: 0, Span: B}
	if err := mem.Put(context.Background(), Node{ID: id, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	st := &cancelOwnerStore{MemStore: mem, started: make(chan struct{})}
	cache := NewNodeCache(st, 0)

	ownerCtx, cancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := cache.Get(ownerCtx, id)
		ownerErr <- err
	}()
	<-st.started // the owner's fetch is in flight; its flight is registered

	joinerErr := make(chan error, 1)
	go func() {
		_, err := cache.Get(context.Background(), id)
		joinerErr <- err
	}()
	cancel()
	if err := <-ownerErr; err == nil {
		t.Error("canceled owner succeeded")
	}
	if err := <-joinerErr; err != nil {
		t.Errorf("joiner inherited the owner's cancellation: %v", err)
	}
}

func TestCacheMissError(t *testing.T) {
	ctx := context.Background()
	cache := NewNodeCache(NewMemStore(), 0)
	if _, err := cache.Get(ctx, NodeID{Blob: 1, Version: 9, Off: 0, Span: B}); err == nil {
		t.Error("absent node returned without error")
	}
	// Errors must not be cached: store the node, the next Get succeeds.
	id := NodeID{Blob: 1, Version: 9, Off: 0, Span: B}
	if err := cache.Inner().Put(ctx, Node{ID: id, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(ctx, id); err != nil {
		t.Errorf("node stored after miss still unreadable: %v", err)
	}
}

func TestCacheDeleteInvalidates(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	id := NodeID{Blob: 1, Version: 1, Off: 0, Span: B}
	if err := cache.Put(ctx, Node{ID: id, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	if err := cache.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	if inner.Has(id) {
		t.Error("delete did not reach the inner store")
	}
	if _, err := cache.Get(ctx, id); err == nil {
		t.Error("deleted node still served from cache")
	}
}

func TestCacheGetBatchMixesHitsAndMisses(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	ids := make([]NodeID, 10)
	for i := range ids {
		ids[i] = NodeID{Blob: 1, Version: 1, Off: int64(i) * B, Span: B}
		if err := inner.Put(ctx, Node{ID: ids[i], Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Prime half through the cache.
	for _, id := range ids[:5] {
		if _, err := cache.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	_, getsBefore := inner.Ops()
	absent := NodeID{Blob: 1, Version: 7, Off: 0, Span: B}
	got, err := cache.GetBatch(ctx, append(append([]NodeID{}, ids...), absent))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("batch resolved %d nodes, want 10", len(got))
	}
	if _, ok := got[absent]; ok {
		t.Error("absent node resolved")
	}
	_, getsAfter := inner.Ops()
	// Only the 5 unprimed ids + the absent one may touch the store.
	if getsAfter-getsBefore > 6 {
		t.Errorf("batch issued %d inner gets, want <= 6", getsAfter-getsBefore)
	}
}

func TestCacheConcurrentResolveBuildRace(t *testing.T) {
	// Writers keep appending versions while readers resolve whatever is
	// already published; run with -race. Mirrors concurrent mappers over
	// a growing blob.
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 128)
	m := meta()
	h := &blob.History{}
	var mu sync.Mutex // guards h
	const versions = 24

	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 4 * B, SizeAfter: 4 * B, Kind: blob.KindAppend})
	if _, err := Build(ctx, cache, m, h, 1, refs(1, 4, 0)); err != nil {
		t.Fatal(err)
	}

	var published atomic.Int64
	published.Store(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for v := blob.Version(2); v <= versions; v++ {
			mu.Lock()
			mustAppendDesc := blob.WriteDesc{Version: v, Off: 0, Len: 2 * B, SizeAfter: 4 * B}
			if err := h.Append(mustAppendDesc); err != nil {
				mu.Unlock()
				t.Error(err)
				return
			}
			snap := h.Clone()
			mu.Unlock()
			if _, err := Build(ctx, cache, m, snap, v, refs(uint64(v), 2, 0)); err != nil {
				t.Error(err)
				return
			}
			published.Store(int64(v))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := blob.Version(published.Load())
				ext, err := Resolve(ctx, cache, m, v, 4*B, blob.Range{Off: 0, Len: 4 * B})
				if err != nil {
					t.Errorf("resolve v%d: %v", v, err)
					return
				}
				var total int64
				for _, e := range ext {
					total += e.Len
				}
				if total != 4*B {
					t.Errorf("resolve v%d covered %d bytes", v, total)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCacheShardSpread(t *testing.T) {
	// Sequential tree NodeIDs must not all land in one shard.
	c := NewNodeCache(NewMemStore(), 0)
	counts := make(map[*cacheShard]int)
	for i := 0; i < 1024; i++ {
		counts[c.shard(NodeID{Blob: 1, Version: 3, Off: int64(i) * B, Span: B})]++
	}
	if len(counts) < cacheShardCount/2 {
		t.Errorf("1024 sequential ids hit only %d/%d shards", len(counts), cacheShardCount)
	}
	for s, n := range counts {
		if n > 1024/2 {
			t.Errorf("shard %p owns %d/1024 ids", s, n)
		}
	}
}

func TestCacheThroughDHTStoreKeysDiffer(t *testing.T) {
	// Guard against NodeID map-key collisions: distinct ids must stay
	// distinct entries.
	ctx := context.Background()
	cache := NewNodeCache(NewMemStore(), 0)
	a := NodeID{Blob: 1, Version: 1, Off: 0, Span: 2 * B}
	b := NodeID{Blob: 1, Version: 1, Off: 0, Span: B}
	if err := cache.Put(ctx, Node{ID: a}); err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(ctx, Node{ID: b, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	na, err := cache.Get(ctx, a)
	if err != nil || na.Leaf {
		t.Errorf("inner node corrupted: %+v, %v", na, err)
	}
	nb, err := cache.Get(ctx, b)
	if err != nil || !nb.Leaf {
		t.Errorf("leaf corrupted: %+v, %v", nb, err)
	}
}

func TestCacheInvalidateVersion(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	for v := blob.Version(1); v <= 2; v++ {
		for i := 0; i < 4; i++ {
			n := Node{ID: NodeID{Blob: 1, Version: v, Off: int64(i) * B, Span: B}, Leaf: true}
			if err := cache.Put(ctx, n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if dropped := cache.InvalidateVersion(1, 1); dropped != 4 {
		t.Errorf("invalidated %d nodes, want 4", dropped)
	}
	_, gets0 := inner.Ops()
	// Version 1 must refetch from the store, version 2 must still hit.
	if _, err := cache.Get(ctx, NodeID{Blob: 1, Version: 1, Off: 0, Span: B}); err != nil {
		t.Fatal(err)
	}
	if _, gets := inner.Ops(); gets != gets0+1 {
		t.Errorf("invalidated node served from cache (gets %d -> %d)", gets0, gets)
	}
	if _, err := cache.Get(ctx, NodeID{Blob: 1, Version: 2, Off: 0, Span: B}); err != nil {
		t.Fatal(err)
	}
	if _, gets := inner.Ops(); gets != gets0+1 {
		t.Error("version 2 node was invalidated too")
	}
}

func TestCacheRefreshesRepairedNode(t *testing.T) {
	// Abort repair re-Builds an aborted version's nodes in place with
	// empty block refs; a write-through of the repaired node must
	// replace the cached original, not be ignored.
	ctx := context.Background()
	cache := NewNodeCache(NewMemStore(), 0)
	id := NodeID{Blob: 1, Version: 1, Off: 0, Span: B}
	orig := Node{ID: id, Leaf: true, Block: BlockRef{Key: blob.BlockKey{Blob: 1, Nonce: 7}, Providers: []string{"p1"}, Len: B}}
	if err := cache.Put(ctx, orig); err != nil {
		t.Fatal(err)
	}
	repaired := Node{ID: id, Leaf: true} // no providers: reads as zeros
	if err := cache.Put(ctx, repaired); err != nil {
		t.Fatal(err)
	}
	got, err := cache.Get(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Block.Providers) != 0 {
		t.Errorf("cache still serves the pre-repair node: %+v", got)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	cache := NewNodeCache(inner, 0)
	id := NodeID{Blob: 2, Version: 1, Off: 0, Span: B}
	if err := inner.Put(ctx, Node{ID: id, Leaf: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(ctx, id); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheGetBatchSingleflightAcrossCallers(t *testing.T) {
	// Two concurrent GetBatch calls over the same cold ids must not both
	// hit the store for every id.
	ctx := context.Background()
	mem := NewMemStore()
	ids := make([]NodeID, 16)
	for i := range ids {
		ids[i] = NodeID{Blob: 1, Version: 1, Off: int64(i) * B, Span: B}
		if err := mem.Put(ctx, Node{ID: ids[i], Leaf: true}); err != nil {
			t.Fatal(err)
		}
	}
	cache := NewNodeCache(mem, 0)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := cache.GetBatch(ctx, ids)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(ids) {
				t.Errorf("resolved %d/%d", len(got), len(ids))
			}
		}()
	}
	wg.Wait()
	_, gets := mem.Ops()
	if gets > int64(len(ids)*callers/2) {
		t.Errorf("%d inner gets for %d ids x %d callers (dedup ineffective)", gets, len(ids), callers)
	}
}
