package mdtree

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"blobseer/internal/blob"
	"blobseer/internal/util"
)

// refModel is a flat reference implementation of versioned blobs: a
// full byte-slice copy per version. The property tests check that
// Build+Resolve over the segment trees reproduce it bit-for-bit.
type refModel struct {
	versions [][]byte // versions[v-1] = contents at version v
}

func (m *refModel) apply(off int64, data []byte) {
	var prev []byte
	if len(m.versions) > 0 {
		prev = m.versions[len(m.versions)-1]
	}
	size := int64(len(prev))
	if off+int64(len(data)) > size {
		size = off + int64(len(data))
	}
	next := make([]byte, size)
	copy(next, prev)
	copy(next[off:], data)
	m.versions = append(m.versions, next)
}

func (m *refModel) read(v blob.Version, off, length int64) []byte {
	cur := m.versions[v-1]
	if off >= int64(len(cur)) {
		return nil
	}
	end := off + length
	if end > int64(len(cur)) {
		end = int64(len(cur))
	}
	return cur[off:end]
}

// treeHarness drives Build/Resolve with fake providers (an in-memory
// block map).
type treeHarness struct {
	t      *testing.T
	st     *MemStore
	h      *blob.History
	meta   blob.Meta
	blocks map[blob.BlockKey][]byte
	nonce  uint64
}

func newHarness(t *testing.T, blockSize int64) *treeHarness {
	return &treeHarness{
		t:      t,
		st:     NewMemStore(),
		h:      &blob.History{},
		meta:   blob.Meta{ID: 1, BlockSize: blockSize, Replication: 1},
		blocks: make(map[blob.BlockKey][]byte),
	}
}

func (th *treeHarness) write(off int64, data []byte) error {
	th.nonce++
	v := th.h.Latest() + 1
	size := th.h.SizeAt(th.h.Latest())
	if off+int64(len(data)) > size {
		size = off + int64(len(data))
	}
	if err := th.h.Append(blob.WriteDesc{Version: v, Off: off, Len: int64(len(data)), SizeAfter: size}); err != nil {
		return err
	}
	n := blob.Blocks(int64(len(data)), th.meta.BlockSize)
	refs := make([]BlockRef, n)
	for i := int64(0); i < n; i++ {
		start := i * th.meta.BlockSize
		end := util.Min(start+th.meta.BlockSize, int64(len(data)))
		key := blob.BlockKey{Blob: 1, Nonce: th.nonce, Seq: uint32(i)}
		th.blocks[key] = append([]byte(nil), data[start:end]...)
		refs[i] = BlockRef{Key: key, Providers: []string{"p"}, Len: end - start}
	}
	_, err := Build(context.Background(), th.st, th.meta, th.h, v, refs)
	return err
}

func (th *treeHarness) read(v blob.Version, off, length int64) ([]byte, error) {
	size := th.h.SizeAt(v)
	ext, err := Resolve(context.Background(), th.st, th.meta, v, size, blob.Range{Off: off, Len: length})
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, e := range ext {
		if !e.HasData {
			out = append(out, make([]byte, e.Len)...)
			continue
		}
		data := th.blocks[e.Block.Key]
		// Mirror provider GetRange semantics: clamp, then zero-fill.
		o, l := e.DataOff, e.Len
		if o > int64(len(data)) {
			o = int64(len(data))
		}
		if o+l > int64(len(data)) {
			chunk := data[o:]
			out = append(out, chunk...)
			out = append(out, make([]byte, l-int64(len(chunk)))...)
		} else {
			out = append(out, data[o:o+l]...)
		}
	}
	return out, nil
}

// TestTreeMatchesReferenceModel drives a deterministic multi-version
// schedule and checks every version against the flat model.
func TestTreeMatchesReferenceModel(t *testing.T) {
	const bs = 16
	th := newHarness(t, bs)
	model := &refModel{}

	pattern := func(tag byte, n int) []byte {
		d := make([]byte, n)
		for i := range d {
			d[i] = tag + byte(i%7)
		}
		return d
	}
	steps := []struct {
		off  int64
		data []byte
	}{
		{0, pattern('a', 3*bs)},         // initial append
		{bs, pattern('b', bs)},          // overwrite middle block
		{3 * bs, pattern('c', bs+bs/2)}, // append with partial tail... aligned off
		{0, pattern('d', bs)},           // overwrite first block
		{6 * bs, pattern('e', 2*bs)},    // sparse write past EOF
		{4 * bs, pattern('f', bs)},      // fill part of the gap
	}
	for i, s := range steps {
		if err := th.write(s.off, s.data); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		model.apply(s.off, s.data)
	}
	for v := blob.Version(1); v <= th.h.Latest(); v++ {
		size := th.h.SizeAt(v)
		got, err := th.read(v, 0, size)
		if err != nil {
			t.Fatalf("read v%d: %v", v, err)
		}
		want := model.read(v, 0, size)
		// Zero-pad reference for sparse regions beyond its stored size.
		for int64(len(want)) < size {
			want = append(want, 0)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("version %d mismatch: got %d bytes, want %d", v, len(got), len(want))
		}
	}
}

// TestTreePropertyRandomSchedules is the main property test: random
// block-aligned write/append schedules, random sub-range reads at
// every version, compared to the reference model.
func TestTreePropertyRandomSchedules(t *testing.T) {
	const bs = 8
	f := func(seed uint64) bool {
		rng := util.NewSplitMix64(seed)
		th := newHarness(t, bs)
		model := &refModel{}
		size := int64(0)
		for step := 0; step < 12; step++ {
			var off int64
			if rng.Intn(2) == 0 || size == 0 {
				off = (size + bs - 1) / bs * bs // append at aligned EOF
			} else {
				off = rng.Int63n(size/bs+1) * bs
			}
			n := 1 + rng.Int63n(3*bs)
			// Partial tails only at EOF (the core validation rule).
			if off+n < size && n%bs != 0 {
				n = (n/bs + 1) * bs
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Next())
			}
			if err := th.write(off, data); err != nil {
				t.Logf("write failed: %v", err)
				return false
			}
			model.apply(off, data)
			if off+n > size {
				size = off + n
			}
		}
		// Random reads at random versions.
		for q := 0; q < 20; q++ {
			v := blob.Version(1 + rng.Intn(int(th.h.Latest())))
			vsize := th.h.SizeAt(v)
			off := rng.Int63n(vsize + 3)
			length := rng.Int63n(vsize + 3)
			got, err := th.read(v, off, length)
			if err != nil {
				t.Logf("read failed: %v", err)
				return false
			}
			want := model.read(v, off, length)
			// Model returns only stored bytes; tree returns zero-filled
			// up to min(end, size). Pad the model to compare.
			end := off + length
			if end > vsize {
				end = vsize
			}
			wantLen := end - off
			if wantLen < 0 {
				wantLen = 0
			}
			for int64(len(want)) < wantLen {
				want = append(want, 0)
			}
			if !bytes.Equal(got, want) {
				t.Logf("seed %d v%d read(%d,%d): got %d bytes want %d", seed, v, off, length, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSubtreeSharingBounded verifies the storage-efficiency claim: a
// one-block overwrite of a large blob creates O(log n) nodes, not O(n).
func TestSubtreeSharingBounded(t *testing.T) {
	const bs = 4
	th := newHarness(t, bs)
	if err := th.write(0, make([]byte, 256*bs)); err != nil { // 256 blocks
		t.Fatal(err)
	}
	before := th.st.Len()
	if err := th.write(128*bs, make([]byte, bs)); err != nil {
		t.Fatal(err)
	}
	created := th.st.Len() - before
	// One leaf + path to root: log2(256) = 8 inner nodes + root = 9,
	// plus the leaf = 10... exactly depth+1 nodes.
	if created != 9 {
		t.Errorf("one-block overwrite created %d nodes, want 9 (leaf + path)", created)
	}
}

// TestDeterministicNodeIdentity: two independent builders over the same
// history must produce identical node sets (the foundation of
// concurrent weaving and abort repair).
func TestDeterministicNodeIdentity(t *testing.T) {
	mkIDs := func() map[string]bool {
		h := &blob.History{}
		m := blob.Meta{ID: 1, BlockSize: 8, Replication: 1}
		writes := []blob.WriteDesc{
			{Version: 1, Off: 0, Len: 32, SizeAfter: 32},
			{Version: 2, Off: 8, Len: 16, SizeAfter: 32},
			{Version: 3, Off: 32, Len: 8, SizeAfter: 40},
		}
		ids := map[string]bool{}
		for _, d := range writes {
			if err := h.Append(d); err != nil {
				t.Fatal(err)
			}
			plan, err := PlanNodes(m, h, d.Version)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range plan {
				ids[id.Key()] = true
			}
		}
		return ids
	}
	a, b := mkIDs(), mkIDs()
	if len(a) != len(b) {
		t.Fatalf("plans differ in size: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Errorf("node %s missing from second plan", k)
		}
	}
}

func TestNodeIDKeyUnique(t *testing.T) {
	seen := map[string]bool{}
	for v := blob.Version(1); v <= 3; v++ {
		for off := int64(0); off < 4; off++ {
			for span := int64(1); span <= 2; span++ {
				k := NodeID{Blob: 1, Version: v, Off: off * 64, Span: span * 64}.Key()
				if seen[k] {
					t.Fatalf("duplicate key %s", k)
				}
				seen[k] = true
			}
		}
	}
	a := NodeID{Blob: 1, Version: 12, Off: 3, Span: 4}.Key()
	b := NodeID{Blob: 1, Version: 1, Off: 23, Span: 4}.Key()
	if a == b {
		t.Errorf("ambiguous keys: %q vs %q", a, b)
	}
	_ = fmt.Sprintf("%s", a)
}
