package mdtree

import (
	"context"
	"testing"

	"blobseer/internal/blob"
)

const B = 64 // block size used throughout these tests

func meta() blob.Meta { return blob.Meta{ID: 1, BlockSize: B, Replication: 1} }

// refs builds n BlockRefs for a write identified by nonce; the last
// block holds lastLen bytes (B if lastLen == 0).
func refs(nonce uint64, n int, lastLen int64) []BlockRef {
	out := make([]BlockRef, n)
	for i := range out {
		ln := int64(B)
		if i == n-1 && lastLen != 0 {
			ln = lastLen
		}
		out[i] = BlockRef{
			Key:       blob.BlockKey{Blob: 1, Nonce: nonce, Seq: uint32(i)},
			Providers: []string{"p1"},
			Len:       ln,
		}
	}
	return out
}

func mustAppend(t testing.TB, h *blob.History, d blob.WriteDesc) {
	t.Helper()
	if err := h.Append(d); err != nil {
		t.Fatal(err)
	}
}

// TestFigure1Scenario replays the exact metadata evolution of the
// paper's Figure 1: (a) append four blocks to an empty BLOB,
// (b) overwrite the first two blocks, (c) append one more block.
func TestFigure1Scenario(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}

	// (a) append 4 blocks: the full binary tree over [0,4B) appears.
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 4 * B, SizeAfter: 4 * B, Kind: blob.KindAppend})
	n, err := Build(ctx, st, meta(), h, 1, refs(0xa1, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // 4 leaves + 2 inner + root
		t.Errorf("(a) created %d nodes, want 7", n)
	}
	for _, id := range []NodeID{
		{1, 1, 0, 4 * B}, {1, 1, 0, 2 * B}, {1, 1, 2 * B, 2 * B},
		{1, 1, 0, B}, {1, 1, B, B}, {1, 1, 2 * B, B}, {1, 1, 3 * B, B},
	} {
		if !st.Has(id) {
			t.Errorf("(a) missing node %s", id.Key())
		}
	}

	// (b) overwrite the first two blocks: new root, new left subtree;
	// the right subtree of version 1 is shared, not copied.
	mustAppend(t, h, blob.WriteDesc{Version: 2, Off: 0, Len: 2 * B, SizeAfter: 4 * B})
	n, err = Build(ctx, st, meta(), h, 2, refs(0xa2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // root + (0,2B) inner + 2 leaves
		t.Errorf("(b) created %d nodes, want 4", n)
	}
	root2, err := st.Get(ctx, NodeID{1, 2, 0, 4 * B})
	if err != nil {
		t.Fatal(err)
	}
	if root2.Left.Version != 2 || root2.Right.Version != 1 {
		t.Errorf("(b) root children = %d/%d, want 2/1 (right subtree shared with v1)", root2.Left.Version, root2.Right.Version)
	}
	if st.Has(NodeID{1, 2, 2 * B, 2 * B}) {
		t.Error("(b) version 2 needlessly copied the shared right subtree")
	}

	// (c) append one block: the root span doubles from 4B to 8B; the
	// new root borrows the whole previous tree as its left child.
	mustAppend(t, h, blob.WriteDesc{Version: 3, Off: 4 * B, Len: B, SizeAfter: 5 * B, Kind: blob.KindAppend})
	n, err = Build(ctx, st, meta(), h, 3, refs(0xa3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // root(0,8B) + (4B,4B) + (4B,2B) + leaf(4B,B)
		t.Errorf("(c) created %d nodes, want 4", n)
	}
	root3, err := st.Get(ctx, NodeID{1, 3, 0, 8 * B})
	if err != nil {
		t.Fatal(err)
	}
	if root3.Left.Version != 2 {
		t.Errorf("(c) left child version = %d, want 2 (previous root shared)", root3.Left.Version)
	}
	if root3.Right.Version != 3 {
		t.Errorf("(c) right child version = %d, want 3", root3.Right.Version)
	}
	right, err := st.Get(ctx, NodeID{1, 3, 4 * B, 4 * B})
	if err != nil {
		t.Fatal(err)
	}
	if !right.Left.Present() {
		t.Error("(c) subtree holding the appended block missing")
	}
	if right.Right.Present() {
		t.Error("(c) unwritten region [6B,8B) should be absent")
	}
}

func TestBuildValidation(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 10, Len: B, SizeAfter: 10 + B})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 1, 0)); err == nil {
		t.Error("unaligned offset accepted")
	}
	h2 := &blob.History{}
	mustAppend(t, h2, blob.WriteDesc{Version: 1, Off: 0, Len: 2 * B, SizeAfter: 2 * B})
	if _, err := Build(ctx, st, meta(), h2, 1, refs(1, 1, 0)); err == nil {
		t.Error("wrong block-ref count accepted")
	}
	if _, err := Build(ctx, st, meta(), h2, 9, nil); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestPartialFinalBlock(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	// 1.5 blocks written: leaf 1 stores B/2 bytes.
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: B + B/2, SizeAfter: B + B/2, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(7, 2, B/2)); err != nil {
		t.Fatal(err)
	}
	ext, err := Resolve(ctx, st, meta(), 1, B+B/2, blob.Range{Off: 0, Len: 2 * B})
	if err != nil {
		t.Fatal(err)
	}
	// Read is clamped to size: extents must cover exactly [0, 1.5B).
	var total int64
	for _, e := range ext {
		total += e.Len
	}
	if total != B+B/2 {
		t.Errorf("resolved %d bytes, want %d", total, B+B/2)
	}
	last := ext[len(ext)-1]
	if !last.HasData || last.Block.Len != B/2 {
		t.Errorf("final extent = %+v", last)
	}
}

func TestSparseWriteLeavesHoles(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	// Write block 3 only of an empty blob: blocks 0-2 are holes.
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 3 * B, Len: B, SizeAfter: 4 * B})
	if _, err := Build(ctx, st, meta(), h, 1, refs(9, 1, 0)); err != nil {
		t.Fatal(err)
	}
	ext, err := Resolve(ctx, st, meta(), 1, 4*B, blob.Range{Off: 0, Len: 4 * B})
	if err != nil {
		t.Fatal(err)
	}
	dataBytes, holeBytes := int64(0), int64(0)
	for _, e := range ext {
		if e.HasData {
			dataBytes += e.Len
		} else {
			holeBytes += e.Len
		}
	}
	if dataBytes != B || holeBytes != 3*B {
		t.Errorf("data=%d holes=%d, want %d/%d", dataBytes, holeBytes, B, 3*B)
	}
}

func TestBridgeNodesOnLargeSpanGrowth(t *testing.T) {
	// Version 1 writes one block (span B). Version 2 appends at block 4
	// (span grows 8x). The borrowed left spine requires bridge nodes at
	// version 2 for ranges [0,4B) and [0,2B) that v1's tiny tree never
	// had, even though v2's write does not touch them.
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: B, SizeAfter: B, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, h, blob.WriteDesc{Version: 2, Off: 4 * B, Len: 4 * B, SizeAfter: 8 * B})
	if _, err := Build(ctx, st, meta(), h, 2, refs(2, 4, 0)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []NodeID{{1, 2, 0, 4 * B}, {1, 2, 0, 2 * B}} {
		if !st.Has(id) {
			t.Errorf("missing bridge node %s", id.Key())
		}
	}
	bridge, err := st.Get(ctx, NodeID{1, 2, 0, 2 * B})
	if err != nil {
		t.Fatal(err)
	}
	if bridge.Left.Version != 1 {
		t.Errorf("bridge left child = %d, want 1", bridge.Left.Version)
	}
	if bridge.Right.Present() {
		t.Error("bridge right child should be a hole")
	}
	// The whole blob must resolve: 1 data block, 3 hole blocks, 4 data.
	ext, err := Resolve(ctx, st, meta(), 2, 8*B, blob.Range{Off: 0, Len: 8 * B})
	if err != nil {
		t.Fatal(err)
	}
	var data, holes int64
	for _, e := range ext {
		if e.HasData {
			data += e.Len
		} else {
			holes += e.Len
		}
	}
	if data != 5*B || holes != 3*B {
		t.Errorf("data=%d holes=%d", data, holes)
	}
}

func TestConcurrentWeavingAgainstInProgressWriter(t *testing.T) {
	// The paper's key concurrency property: version 3's writer can
	// build its metadata referencing version 2's nodes *before* version
	// 2 has stored them, because node identity is deterministic.
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 4 * B, SizeAfter: 4 * B, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 4, 0)); err != nil {
		t.Fatal(err)
	}
	// Descriptors for versions 2 and 3 are assigned (the VM hint), but
	// version 2's metadata is NOT built yet.
	mustAppend(t, h, blob.WriteDesc{Version: 2, Off: 0, Len: B, SizeAfter: 4 * B})
	mustAppend(t, h, blob.WriteDesc{Version: 3, Off: B, Len: B, SizeAfter: 4 * B})

	if _, err := Build(ctx, st, meta(), h, 3, refs(3, 1, 0)); err != nil {
		t.Fatal(err)
	}
	root3, err := st.Get(ctx, NodeID{1, 3, 0, 4 * B})
	if err != nil {
		t.Fatal(err)
	}
	if root3.Left.Version != 3 {
		t.Fatalf("root3 left = %d", root3.Left.Version)
	}
	inner3, err := st.Get(ctx, NodeID{1, 3, 0, 2 * B})
	if err != nil {
		t.Fatal(err)
	}
	// Version 3's tree must point at version 2's (not yet existing!)
	// leaf for block 0.
	if inner3.Left.Version != 2 {
		t.Fatalf("woven reference = %d, want 2", inner3.Left.Version)
	}
	// Now version 2 finishes; the dangling reference becomes readable.
	if _, err := Build(ctx, st, meta(), h, 2, refs(2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	ext, err := Resolve(ctx, st, meta(), 3, 4*B, blob.Range{Off: 0, Len: 4 * B})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) == 0 {
		t.Fatal("no extents")
	}
	if ext[0].Block.Key.Nonce != 2 { // block 0 owned by version 2
		t.Errorf("block 0 from nonce %x, want 2", ext[0].Block.Key.Nonce)
	}
	if ext[1].Block.Key.Nonce != 3 { // block 1 owned by version 3
		t.Errorf("block 1 from nonce %x, want 3", ext[1].Block.Key.Nonce)
	}
}

func TestResolveUnalignedSubBlockRange(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 4 * B, SizeAfter: 4 * B, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 4, 0)); err != nil {
		t.Fatal(err)
	}
	// Read 10 bytes straddling the boundary of blocks 1 and 2.
	ext, err := Resolve(ctx, st, meta(), 1, 4*B, blob.Range{Off: 2*B - 5, Len: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 2 {
		t.Fatalf("extents = %d, want 2", len(ext))
	}
	if ext[0].FileOff != 2*B-5 || ext[0].Len != 5 || ext[0].DataOff != B-5 {
		t.Errorf("first extent = %+v", ext[0])
	}
	if ext[1].FileOff != 2*B || ext[1].Len != 5 || ext[1].DataOff != 0 {
		t.Errorf("second extent = %+v", ext[1])
	}
}

func TestResolveOldVersionUnaffectedByNewWrites(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 2 * B, SizeAfter: 2 * B, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 2, 0)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, h, blob.WriteDesc{Version: 2, Off: 0, Len: 2 * B, SizeAfter: 2 * B})
	if _, err := Build(ctx, st, meta(), h, 2, refs(2, 2, 0)); err != nil {
		t.Fatal(err)
	}
	ext, err := Resolve(ctx, st, meta(), 1, 2*B, blob.Range{Off: 0, Len: 2 * B})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ext {
		if e.Block.Key.Nonce != 1 {
			t.Errorf("version 1 read sees nonce %x", e.Block.Key.Nonce)
		}
	}
}

func TestResolveEmptyAndClampedRanges(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	if ext, err := Resolve(ctx, st, meta(), blob.NoVersion, 0, blob.Range{Off: 0, Len: 10}); err != nil || ext != nil {
		t.Errorf("empty blob resolve = %v, %v", ext, err)
	}
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: B, SizeAfter: B, Kind: blob.KindAppend})
	if _, err := Build(ctx, st, meta(), h, 1, refs(1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Read entirely past EOF.
	if ext, err := Resolve(ctx, st, meta(), 1, B, blob.Range{Off: 2 * B, Len: 10}); err != nil || len(ext) != 0 {
		t.Errorf("past-EOF resolve = %v, %v", ext, err)
	}
	if _, err := Resolve(ctx, st, meta(), 1, B, blob.Range{Off: -1, Len: 10}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestPlanNodesMatchesBuild(t *testing.T) {
	ctx := context.Background()
	st := NewMemStore()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 3 * B, SizeAfter: 3 * B, Kind: blob.KindAppend})
	ids, err := PlanNodes(meta(), h, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(ctx, st, meta(), h, 1, refs(1, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("plan %d nodes, build created %d", len(ids), n)
	}
	for _, id := range ids {
		if !st.Has(id) {
			t.Errorf("planned node %s not built", id.Key())
		}
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	leaf := Node{
		ID:   NodeID{Blob: 3, Version: 9, Off: 128, Span: 64},
		Leaf: true,
		Block: BlockRef{
			Key:       blob.BlockKey{Blob: 3, Nonce: 0xdead, Seq: 2},
			Providers: []string{"p1", "p2"},
			Len:       40,
		},
	}
	got, err := DecodeNode(leaf.ID, EncodeNode(leaf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Block.Key != leaf.Block.Key || got.Block.Len != 40 || len(got.Block.Providers) != 2 {
		t.Errorf("leaf round trip = %+v", got)
	}
	inner := Node{
		ID:    NodeID{Blob: 3, Version: 9, Off: 0, Span: 256},
		Left:  ChildRef{Version: 4},
		Right: ChildRef{Version: 9},
	}
	got, err = DecodeNode(inner.ID, EncodeNode(inner))
	if err != nil {
		t.Fatal(err)
	}
	if got.Left.Version != 4 || got.Right.Version != 9 || got.Leaf {
		t.Errorf("inner round trip = %+v", got)
	}
	if _, err := DecodeNode(inner.ID, []byte{1, 2}); err == nil {
		t.Error("garbage decoded")
	}
}
