package mdtree

import (
	"context"
	"sync/atomic"
	"testing"

	"blobseer/internal/blob"
)

// tripStore counts store round-trips: each Get and each GetBatch is one
// trip, no matter how many nodes a batch carries.
type tripStore struct {
	*MemStore
	trips atomic.Int64
}

func (s *tripStore) Get(ctx context.Context, id NodeID) (Node, error) {
	s.trips.Add(1)
	return s.MemStore.Get(ctx, id)
}

func (s *tripStore) GetBatch(ctx context.Context, ids []NodeID) (map[NodeID]Node, error) {
	s.trips.Add(1)
	return s.MemStore.GetBatch(ctx, ids)
}

// seqStore hides the batch capability, forcing per-node fetches — the
// pre-batching behaviour used as a baseline.
type seqStore struct{ inner *tripStore }

func (s *seqStore) Put(ctx context.Context, n Node) error            { return s.inner.Put(ctx, n) }
func (s *seqStore) Get(ctx context.Context, id NodeID) (Node, error) { return s.inner.Get(ctx, id) }

// treeDepth is the number of levels of a tree spanning nBlocks blocks:
// the batched Resolve's round-trip budget.
func treeDepth(nBlocks int) int64 {
	d := int64(1)
	for span := int64(1); span < int64(nBlocks); span *= 2 {
		d++
	}
	return d
}

func TestResolveBatchedRoundTripsAreLogarithmic(t *testing.T) {
	// The structural speedup of the issue: resolving an N-block range
	// must cost O(depth) batched round-trips, not O(N) sequential ones.
	ctx := context.Background()
	for _, nBlocks := range []int{4, 16, 64, 256} {
		ts := &tripStore{MemStore: NewMemStore()}
		_, m := buildBlocks(t, ts, nBlocks)
		ts.trips.Store(0)
		size := int64(nBlocks) * B
		ext, err := Resolve(ctx, ts, m, 1, size, blob.Range{Off: 0, Len: size})
		if err != nil {
			t.Fatal(err)
		}
		if len(ext) != nBlocks {
			t.Fatalf("n=%d: %d extents", nBlocks, len(ext))
		}
		if got, depth := ts.trips.Load(), treeDepth(nBlocks); got > depth {
			t.Errorf("n=%d: batched resolve took %d round-trips, want <= depth %d", nBlocks, got, depth)
		}
		// The same resolve through a batch-blind store pays per node.
		seq := &seqStore{inner: ts}
		ts.trips.Store(0)
		if _, err := Resolve(ctx, seq, m, 1, size, blob.Range{Off: 0, Len: size}); err != nil {
			t.Fatal(err)
		}
		if got := ts.trips.Load(); got < int64(nBlocks) {
			t.Errorf("n=%d: sequential baseline took %d round-trips, expected >= %d", nBlocks, got, nBlocks)
		}
	}
}

func TestResolveBatchedMatchesSequential(t *testing.T) {
	// Extent-for-extent equivalence of the BFS rewrite against the
	// batch-blind path, across writes that share, bridge and hole.
	ctx := context.Background()
	ts := &tripStore{MemStore: NewMemStore()}
	m := meta()
	h := &blob.History{}
	mustAppend(t, h, blob.WriteDesc{Version: 1, Off: 0, Len: 4 * B, SizeAfter: 4 * B, Kind: blob.KindAppend})
	if _, err := Build(ctx, ts, m, h, 1, refs(1, 4, 0)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, h, blob.WriteDesc{Version: 2, Off: 0, Len: 2 * B, SizeAfter: 4 * B})
	if _, err := Build(ctx, ts, m, h, 2, refs(2, 2, 0)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, h, blob.WriteDesc{Version: 3, Off: 6 * B, Len: B, SizeAfter: 8 * B})
	if _, err := Build(ctx, ts, m, h, 3, refs(3, 1, 0)); err != nil {
		t.Fatal(err)
	}
	ranges := []blob.Range{
		{Off: 0, Len: 8 * B},
		{Off: B / 2, Len: 3 * B},
		{Off: 5 * B, Len: 3 * B},
		{Off: 2*B - 5, Len: 10},
	}
	for _, r := range ranges {
		batched, err := Resolve(ctx, ts, m, 3, 8*B, r)
		if err != nil {
			t.Fatalf("batched resolve %v: %v", r, err)
		}
		sequential, err := Resolve(ctx, &seqStore{inner: ts}, m, 3, 8*B, r)
		if err != nil {
			t.Fatalf("sequential resolve %v: %v", r, err)
		}
		if len(batched) != len(sequential) {
			t.Fatalf("range %v: %d batched extents vs %d sequential", r, len(batched), len(sequential))
		}
		for i := range batched {
			if !extentEqual(batched[i], sequential[i]) {
				t.Errorf("range %v extent %d: batched %+v != sequential %+v", r, i, batched[i], sequential[i])
			}
		}
	}
}

func extentEqual(a, b Extent) bool {
	if a.FileOff != b.FileOff || a.Len != b.Len || a.HasData != b.HasData || a.DataOff != b.DataOff {
		return false
	}
	if a.Block.Key != b.Block.Key || a.Block.Len != b.Block.Len {
		return false
	}
	if len(a.Block.Providers) != len(b.Block.Providers) {
		return false
	}
	for i := range a.Block.Providers {
		if a.Block.Providers[i] != b.Block.Providers[i] {
			return false
		}
	}
	return true
}

func TestResolveBatchedMissingNodeFails(t *testing.T) {
	// A reference to a node no replica has must fail loudly, not read as
	// a hole.
	ctx := context.Background()
	st := NewMemStore()
	_, m := buildBlocks(t, st, 4)
	if err := st.Delete(ctx, NodeID{Blob: 1, Version: 1, Off: 0, Span: 2 * B}); err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(ctx, st, m, 1, 4*B, blob.Range{Off: 0, Len: 4 * B}); err == nil {
		t.Error("resolve with a missing inner node succeeded")
	}
}

func TestBuildUsesOneBatchPutPerWrite(t *testing.T) {
	st := NewMemStore()
	buildBlocks(t, st, 32)
	putBatches, _ := st.BatchOps()
	if putBatches != 1 {
		t.Errorf("build issued %d put batches, want 1", putBatches)
	}
	puts, _ := st.Ops()
	if puts != 63 { // 32 leaves + 31 inner
		t.Errorf("build stored %d nodes, want 63", puts)
	}
}
