package mdtree

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"blobseer/internal/blob"
)

// NodeCache is a bounded, sharded LRU cache wrapped around any Store.
// It is trivially coherent: tree nodes are immutable once written ("no
// existing metadata is ever modified", Section III-A3), so a cached
// node can never go stale — the only invalidation is GC deleting a
// pruned version's nodes, which Delete handles. Warm re-reads of the
// same range (the MapReduce pattern: one input scanned by many mappers)
// resolve entirely from memory with zero DHT traffic.
//
// Concurrent misses for the same node are deduplicated singleflight-
// style: one fetch travels to the store, every other caller waits for
// its result. Under the paper's heavy-concurrency read workloads this
// collapses N simultaneous fetches of the shared tree spine into one.
type NodeCache struct {
	inner  Store
	batch  BatchStore // non-nil when inner supports multi-ops
	shards []cacheShard
	perCap int // max entries per shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	batchGets atomic.Int64 // batched round-trips issued to the inner store
}

// DefaultCacheSize bounds a NodeCache when the caller passes no
// capacity: enough for the full tree of a 64 GB blob at 64 MB blocks.
const DefaultCacheSize = 1 << 16

// cacheShardCount trades lock contention against per-shard LRU quality.
const cacheShardCount = 16

type cacheShard struct {
	mu      sync.Mutex
	entries map[NodeID]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	flights map[NodeID]*flight
}

type cacheEntry struct {
	id NodeID
	n  Node
}

// flight is one in-progress fetch that concurrent callers wait on.
type flight struct {
	done chan struct{}
	n    Node
	ok   bool  // node exists
	err  error // fetch failed; existence undecided
}

// NewNodeCache wraps inner with a cache holding at most capacity nodes
// (DefaultCacheSize if capacity <= 0).
func NewNodeCache(inner Store, capacity int) *NodeCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	perCap := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &NodeCache{inner: inner, perCap: perCap, shards: make([]cacheShard, cacheShardCount)}
	c.batch, _ = inner.(BatchStore)
	for i := range c.shards {
		c.shards[i].entries = make(map[NodeID]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flights = make(map[NodeID]*flight)
	}
	return c
}

// Inner exposes the wrapped store (tests, stats).
func (c *NodeCache) Inner() Store { return c.inner }

// MaybeCache applies the configuration convention shared by daemon
// flags and client configs: size 0 leaves st uncached, size < 0 wraps
// it with DefaultCacheSize, size > 0 wraps it with that capacity.
func MaybeCache(st Store, size int) Store {
	if size == 0 {
		return st
	}
	if size < 0 {
		size = 0 // NewNodeCache's "use the default" convention
	}
	return NewNodeCache(st, size)
}

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	Hits      int64 // lookups served from memory
	Misses    int64 // lookups that had to touch the store (or join a flight)
	Evictions int64 // entries dropped by the LRU bound
	BatchGets int64 // batched multi-get round-trips to the inner store
	Size      int64 // entries currently cached
}

// Stats returns the cache counters.
func (c *NodeCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		BatchGets: c.batchGets.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Size += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

func (c *NodeCache) shard(id NodeID) *cacheShard {
	// NodeIDs of one tree differ mostly in Off/Span; a splitmix-style
	// finalizer spreads them across shards.
	h := uint64(id.Blob)<<32 ^ uint64(id.Version)<<16 ^ uint64(id.Off)<<1 ^ uint64(id.Span)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return &c.shards[(h^(h>>31))%cacheShardCount]
}

// insertLocked adds or refreshes id under the shard lock, evicting the
// coldest entry when over capacity. The value is overwritten even on a
// hit: nodes are immutable for readers, but abort repair re-Builds an
// aborted version's nodes under the same IDs with empty block refs.
func (c *NodeCache) insertLocked(s *cacheShard, id NodeID, n Node) {
	if el, ok := s.entries[id]; ok {
		el.Value.(*cacheEntry).n = n
		s.lru.MoveToFront(el)
		return
	}
	s.entries[id] = s.lru.PushFront(&cacheEntry{id: id, n: n})
	for len(s.entries) > c.perCap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).id)
		c.evictions.Add(1)
	}
}

// Put implements Store: write-through, then cache (the node is
// immutable, so it is cacheable the instant it is durable).
func (c *NodeCache) Put(ctx context.Context, n Node) error {
	if err := c.inner.Put(ctx, n); err != nil {
		return err
	}
	s := c.shard(n.ID)
	s.mu.Lock()
	c.insertLocked(s, n.ID, n)
	s.mu.Unlock()
	return nil
}

// PutBatch implements BatchStore (write-through).
func (c *NodeCache) PutBatch(ctx context.Context, nodes []Node) error {
	if c.batch != nil {
		if err := c.batch.PutBatch(ctx, nodes); err != nil {
			return err
		}
	} else {
		if err := putAllSingles(ctx, c.inner, nodes); err != nil {
			return err
		}
	}
	for _, n := range nodes {
		s := c.shard(n.ID)
		s.mu.Lock()
		c.insertLocked(s, n.ID, n)
		s.mu.Unlock()
	}
	return nil
}

// Get implements Store with singleflight miss-deduplication.
func (c *NodeCache) Get(ctx context.Context, id NodeID) (Node, error) {
	s := c.shard(id)
	s.mu.Lock()
	if el, ok := s.entries[id]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheEntry).n, nil
	}
	c.misses.Add(1)
	if f, ok := s.flights[id]; ok {
		s.mu.Unlock()
		return c.await(ctx, id, f)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[id] = f
	s.mu.Unlock()

	n, err := c.inner.Get(ctx, id)
	c.complete(s, id, f, n, err == nil, err)
	if err != nil {
		return Node{}, err
	}
	return n, nil
}

// await blocks on another caller's in-flight fetch. If the owner's
// fetch failed — its context may have been canceled, which says
// nothing about this caller's — the miss is retried directly rather
// than propagating a stranger's error into a healthy request.
func (c *NodeCache) await(ctx context.Context, id NodeID, f *flight) (Node, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return Node{}, ctx.Err()
	}
	if f.err != nil {
		n, err := c.inner.Get(ctx, id)
		if err != nil {
			return Node{}, err
		}
		s := c.shard(id)
		s.mu.Lock()
		c.insertLocked(s, id, n)
		s.mu.Unlock()
		return n, nil
	}
	if !f.ok {
		return Node{}, fmt.Errorf("mdtree: node %s not found", id.Key())
	}
	return f.n, nil
}

// complete publishes a flight's outcome and caches a found node.
func (c *NodeCache) complete(s *cacheShard, id NodeID, f *flight, n Node, ok bool, err error) {
	f.n, f.ok, f.err = n, ok, err
	s.mu.Lock()
	delete(s.flights, id)
	if err == nil && ok {
		c.insertLocked(s, id, n)
	}
	s.mu.Unlock()
	close(f.done)
}

// GetBatch implements BatchStore. Cached nodes are served from memory;
// the rest are fetched with one inner multi-get (minus any node some
// other caller is already fetching, which is joined instead).
func (c *NodeCache) GetBatch(ctx context.Context, ids []NodeID) (map[NodeID]Node, error) {
	out := make(map[NodeID]Node, len(ids))
	var owned []NodeID // misses this call will fetch
	ownedFlights := make(map[NodeID]*flight)
	var joined []NodeID // misses someone else is fetching
	joinedFlights := make(map[NodeID]*flight)
	for _, id := range ids {
		if _, dup := out[id]; dup {
			continue
		}
		if _, dup := ownedFlights[id]; dup {
			continue
		}
		if _, dup := joinedFlights[id]; dup {
			continue
		}
		s := c.shard(id)
		s.mu.Lock()
		if el, ok := s.entries[id]; ok {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Add(1)
			out[id] = el.Value.(*cacheEntry).n
			continue
		}
		c.misses.Add(1)
		if f, ok := s.flights[id]; ok {
			s.mu.Unlock()
			joined = append(joined, id)
			joinedFlights[id] = f
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[id] = f
		s.mu.Unlock()
		owned = append(owned, id)
		ownedFlights[id] = f
	}

	var fetchErr error
	if len(owned) > 0 {
		var got map[NodeID]Node
		if c.batch != nil {
			c.batchGets.Add(1)
			got, fetchErr = c.batch.GetBatch(ctx, owned)
		} else {
			got = make(map[NodeID]Node, len(owned))
			for _, id := range owned {
				n, err := c.inner.Get(ctx, id)
				if err != nil {
					// A plain Store cannot distinguish "absent" from
					// "unreachable"; treat the error as indeterminate and
					// let the caller surface it.
					fetchErr = err
					break
				}
				got[id] = n
			}
		}
		for _, id := range owned {
			n, ok := got[id]
			c.complete(c.shard(id), id, ownedFlights[id], n, ok && fetchErr == nil, fetchErr)
			if ok && fetchErr == nil {
				out[id] = n
			}
		}
		if fetchErr != nil {
			return nil, fetchErr
		}
	}
	// Joined flights: absent (ok=false) stays absent; a flight whose
	// owner failed is retried under this call's own context instead of
	// inheriting the owner's error (it may just have been canceled).
	var retry []NodeID
	for _, id := range joined {
		f := joinedFlights[id]
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		switch {
		case f.err != nil:
			retry = append(retry, id)
		case f.ok:
			out[id] = f.n
		}
	}
	if len(retry) > 0 {
		got, err := c.fetchDirect(ctx, retry)
		if err != nil {
			return nil, err
		}
		for id, n := range got {
			s := c.shard(id)
			s.mu.Lock()
			c.insertLocked(s, id, n)
			s.mu.Unlock()
			out[id] = n
		}
	}
	return out, nil
}

// fetchDirect fetches ids from the inner store without flight
// registration (used to retry after a failed joined flight).
func (c *NodeCache) fetchDirect(ctx context.Context, ids []NodeID) (map[NodeID]Node, error) {
	if c.batch != nil {
		c.batchGets.Add(1)
		return c.batch.GetBatch(ctx, ids)
	}
	got := make(map[NodeID]Node, len(ids))
	for _, id := range ids {
		n, err := c.inner.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		got[id] = n
	}
	return got, nil
}

// InvalidateVersion drops every cached node materialized by version v
// of blob b and returns how many were dropped. Callers use it when the
// immutability assumption is knowingly broken: the version manager's
// abort repair re-Builds an aborted version's nodes in place, so a
// writer whose write was aborted must purge what it write-through
// cached or it would keep reading its own pre-abort tree.
func (c *NodeCache) InvalidateVersion(b blob.ID, v blob.Version) int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for id, el := range s.entries {
			if id.Blob == b && id.Version == v {
				s.lru.Remove(el)
				delete(s.entries, id)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// Delete implements Deleter: the node is invalidated here and removed
// from the inner store (GC of pruned versions — the one mutation the
// immutability argument allows, deletion).
func (c *NodeCache) Delete(ctx context.Context, id NodeID) error {
	s := c.shard(id)
	s.mu.Lock()
	if el, ok := s.entries[id]; ok {
		s.lru.Remove(el)
		delete(s.entries, id)
	}
	s.mu.Unlock()
	d, ok := c.inner.(Deleter)
	if !ok {
		return fmt.Errorf("mdtree: cached store %T cannot delete nodes", c.inner)
	}
	return d.Delete(ctx, id)
}

// putAllSingles is putAll's bounded-concurrency fallback, shared with
// PutBatch over a non-batching inner store.
func putAllSingles(ctx context.Context, st Store, nodes []Node) error {
	sem := make(chan struct{}, putConcurrency)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, n := range nodes {
		wg.Add(1)
		sem <- struct{}{}
		go func(n Node) {
			defer func() { <-sem; wg.Done() }()
			if err := st.Put(ctx, n); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(n)
	}
	wg.Wait()
	return firstErr
}
