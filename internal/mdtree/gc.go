package mdtree

import (
	"context"
	"fmt"

	"blobseer/internal/blob"
)

// Garbage collection of old snapshot versions (Section III-A1: past
// versions stay accessible "as long as they have not been garbaged for
// the sake of storage space").
//
// Because trees share subtrees, pruning version k must keep every node
// and data block that any kept version (>= keep) can still reach. The
// reachability rule falls out of the deterministic borrow rule ("a
// child covering range R borrows the newest version w <= v whose write
// intersects R"):
//
//   - A node (k, R) that intersects k's own write range is reachable
//     from kept version v >= k exactly when no version w in (k, v]
//     wrote anything intersecting R. Since any such w hides (k, R)
//     from *all* later versions too, the node is dead iff some
//     w in (k, keep] intersects R.
//   - A bridge node (k, R) — materialized only because the root span
//     grew past what the borrowed subtree covers — never intersects
//     k's write, and child references always name intersecting
//     versions, so bridges are reachable only through k's own root:
//     dead as soon as k is pruned.
//
// Dead leaves carry the block references whose payloads can be removed
// from the data providers; DeadNodes reports them so the caller can
// free data before deleting the metadata.

// DeadNode is one metadata node that no kept version can reach.
type DeadNode struct {
	ID   NodeID
	Leaf bool
}

// DeadNodes returns the nodes materialized by pruned version k that
// become unreachable once every version < keep is discarded. The
// history must contain descriptors for all versions up to at least
// keep. k must be < keep.
func DeadNodes(meta blob.Meta, h *blob.History, k, keep blob.Version) ([]DeadNode, error) {
	if k >= keep {
		return nil, fmt.Errorf("mdtree: version %d is kept (keep=%d)", k, keep)
	}
	d, ok := h.Desc(k)
	if !ok {
		return nil, fmt.Errorf("mdtree: history has no descriptor for version %d", k)
	}
	ids, err := PlanNodes(meta, h, k)
	if err != nil {
		return nil, err
	}
	write := d.Range()
	var out []DeadNode
	for _, id := range ids {
		r := id.Range()
		dead := !write.Intersects(r) // bridge: only k's own tree reaches it
		if !dead {
			// Hidden from every kept version by a later write?
			if w := h.LatestIntersecting(r, keep); w > k {
				dead = true
			}
		}
		if dead {
			out = append(out, DeadNode{ID: id, Leaf: r.Len == meta.BlockSize})
		}
	}
	return out, nil
}

// Deleter is the optional deletion capability of a Store. Both MemStore
// and DHTStore implement it; GC requires it.
type Deleter interface {
	Delete(ctx context.Context, id NodeID) error
}
