package mdtree

import (
	"context"
	"fmt"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/dht"
	"blobseer/internal/wire"
)

// EncodeNode serializes a node's value (the identity lives in the key).
func EncodeNode(n Node) []byte {
	b := wire.NewBuffer(64)
	b.Bool(n.Leaf)
	if n.Leaf {
		b.U64(uint64(n.Block.Key.Blob))
		b.U64(n.Block.Key.Nonce)
		b.U32(n.Block.Key.Seq)
		b.I64(n.Block.Len)
		b.StringSlice(n.Block.Providers)
	} else {
		b.U64(uint64(n.Left.Version))
		b.U64(uint64(n.Right.Version))
	}
	return b.Bytes()
}

// DecodeNode parses a node value fetched under id.
func DecodeNode(id NodeID, val []byte) (Node, error) {
	r := wire.NewReader(val)
	n := Node{ID: id}
	n.Leaf = r.Bool()
	if n.Leaf {
		n.Block.Key = blob.BlockKey{
			Blob:  blob.ID(r.U64()),
			Nonce: r.U64(),
			Seq:   r.U32(),
		}
		n.Block.Len = r.I64()
		n.Block.Providers = r.StringSlice()
	} else {
		n.Left = ChildRef{Version: blob.Version(r.U64())}
		n.Right = ChildRef{Version: blob.Version(r.U64())}
	}
	if err := r.Err(); err != nil {
		return Node{}, fmt.Errorf("mdtree: decode %s: %w", id.Key(), err)
	}
	return n, nil
}

// MemStore is an in-process Store used by unit tests, the version
// manager's repair planner tests and the simulator. It counts
// operations so experiments can charge DHT message costs.
type MemStore struct {
	mu         sync.RWMutex
	nodes      map[string]Node
	puts       int64 // individual nodes stored (batched or not)
	gets       int64 // individual nodes fetched (batched or not)
	putBatches int64 // PutBatch calls
	getBatches int64 // GetBatch calls
}

// NewMemStore returns an empty in-memory tree store.
func NewMemStore() *MemStore { return &MemStore{nodes: make(map[string]Node)} }

// Put implements Store.
func (s *MemStore) Put(_ context.Context, n Node) error {
	s.mu.Lock()
	s.nodes[n.ID.Key()] = n
	s.puts++
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(_ context.Context, id NodeID) (Node, error) {
	s.mu.Lock()
	s.gets++
	n, ok := s.nodes[id.Key()]
	s.mu.Unlock()
	if !ok {
		return Node{}, fmt.Errorf("mdtree: node %s not found", id.Key())
	}
	return n, nil
}

// Has reports whether the node exists (tests).
func (s *MemStore) Has(id NodeID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.nodes[id.Key()]
	return ok
}

// Len returns the number of stored nodes.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Ops returns cumulative (puts, gets), counting individual nodes
// whether they traveled alone or inside a batch.
func (s *MemStore) Ops() (puts, gets int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.gets
}

// BatchOps returns the number of PutBatch and GetBatch calls — the
// simulated round-trip count of the batched protocol.
func (s *MemStore) BatchOps() (putBatches, getBatches int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.putBatches, s.getBatches
}

// PutBatch implements BatchStore: all nodes land atomically under one
// lock, counting as one round-trip.
func (s *MemStore) PutBatch(_ context.Context, nodes []Node) error {
	s.mu.Lock()
	for _, n := range nodes {
		s.nodes[n.ID.Key()] = n
	}
	s.puts += int64(len(nodes))
	s.putBatches++
	s.mu.Unlock()
	return nil
}

// GetBatch implements BatchStore: missing nodes are omitted from the
// result, mirroring the DHT's authoritative-miss semantics.
func (s *MemStore) GetBatch(_ context.Context, ids []NodeID) (map[NodeID]Node, error) {
	out := make(map[NodeID]Node, len(ids))
	s.mu.Lock()
	s.gets += int64(len(ids))
	s.getBatches++
	for _, id := range ids {
		if n, ok := s.nodes[id.Key()]; ok {
			out[id] = n
		}
	}
	s.mu.Unlock()
	return out, nil
}

// DHTStore adapts the metadata DHT client to the tree Store interface —
// the production path: tree nodes distributed over metadata providers.
type DHTStore struct {
	c *dht.Client
}

// NewDHTStore wraps c.
func NewDHTStore(c *dht.Client) *DHTStore { return &DHTStore{c: c} }

// Fallbacks surfaces the DHT client's replica-fallback count (reads
// that could not be served by the first replica tried) so client
// metrics can export it without reaching through the store.
func (s *DHTStore) Fallbacks() int64 { return s.c.Fallbacks() }

// Put implements Store.
func (s *DHTStore) Put(ctx context.Context, n Node) error {
	return s.c.Put(ctx, n.ID.Key(), EncodeNode(n))
}

// Get implements Store.
func (s *DHTStore) Get(ctx context.Context, id NodeID) (Node, error) {
	val, err := s.c.Get(ctx, id.Key())
	if err != nil {
		return Node{}, err
	}
	return DecodeNode(id, val)
}

// PutBatch implements BatchStore: the DHT client groups the encoded
// nodes by provider and replicates each group with one parallel RPC
// per provider.
func (s *DHTStore) PutBatch(ctx context.Context, nodes []Node) error {
	kvs := make([]wire.KV, len(nodes))
	for i, n := range nodes {
		kvs[i] = wire.KV{Key: n.ID.Key(), Val: EncodeNode(n)}
	}
	return s.c.PutBatch(ctx, kvs)
}

// GetBatch implements BatchStore: one multi-get RPC per provider, with
// per-key replica fall-through on misses.
func (s *DHTStore) GetBatch(ctx context.Context, ids []NodeID) (map[NodeID]Node, error) {
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = id.Key()
	}
	vals, err := s.c.GetBatch(ctx, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID]Node, len(vals))
	for i, id := range ids {
		val, ok := vals[keys[i]]
		if !ok {
			continue // authoritative miss: Resolve decides what it means
		}
		n, err := DecodeNode(id, val)
		if err != nil {
			return nil, err
		}
		out[id] = n
	}
	return out, nil
}

// Delete implements Deleter (garbage collection of pruned versions).
func (s *MemStore) Delete(_ context.Context, id NodeID) error {
	s.mu.Lock()
	delete(s.nodes, id.Key())
	s.mu.Unlock()
	return nil
}

// Delete implements Deleter.
func (s *DHTStore) Delete(ctx context.Context, id NodeID) error {
	return s.c.Delete(ctx, id.Key())
}
