package mdtree

import (
	"reflect"
	"testing"

	"blobseer/internal/blob"
)

const gcBlock = int64(1024)

func gcHistory(t *testing.T, descs ...blob.WriteDesc) *blob.History {
	t.Helper()
	h := &blob.History{}
	for i := range descs {
		descs[i].Version = blob.Version(i + 1)
		if err := h.Append(descs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func desc(off, ln, after int64, kind blob.WriteKind) blob.WriteDesc {
	return blob.WriteDesc{Off: off, Len: ln, SizeAfter: after, Kind: kind, Nonce: 1}
}

// TestDeadNodesFigure1 prunes the Figure 1 scenario: append 4 blocks
// (v1), overwrite blocks 1-2 (v2), append 1 block (v3). Keeping only
// v3, v1's overwritten leaves die while its still-visible leaves (and
// the subtrees above them that v3 reads through) survive.
func TestDeadNodesFigure1(t *testing.T) {
	meta := blob.Meta{ID: 1, BlockSize: gcBlock, Replication: 1}
	h := gcHistory(t,
		desc(0, 4*gcBlock, 4*gcBlock, blob.KindAppend),
		desc(1*gcBlock, 2*gcBlock, 4*gcBlock, blob.KindWrite),
		desc(4*gcBlock, 1*gcBlock, 5*gcBlock, blob.KindAppend),
	)

	dead1, err := DeadNodes(meta, h, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	deadSet := make(map[string]bool)
	leaves := 0
	for _, d := range dead1 {
		deadSet[d.ID.Key()] = true
		if d.Leaf {
			leaves++
		}
	}
	// v1's leaves at blocks 1 and 2 were overwritten by v2: dead. Its
	// leaves at blocks 0 and 3 are still read by v3: live.
	if leaves != 2 {
		t.Errorf("want 2 dead v1 leaves, got %d (%v)", leaves, dead1)
	}
	for _, off := range []int64{1 * gcBlock, 2 * gcBlock} {
		id := NodeID{Blob: 1, Version: 1, Off: off, Span: gcBlock}
		if !deadSet[id.Key()] {
			t.Errorf("overwritten leaf %s should be dead", id.Key())
		}
	}
	for _, off := range []int64{0, 3 * gcBlock} {
		id := NodeID{Blob: 1, Version: 1, Off: off, Span: gcBlock}
		if deadSet[id.Key()] {
			t.Errorf("shared leaf %s must survive", id.Key())
		}
	}
	// v1's root [0,4B) intersects v2's write: dead (v2 materialized its
	// own [0,4B) node).
	root1 := NodeID{Blob: 1, Version: 1, Off: 0, Span: 4 * gcBlock}
	if !deadSet[root1.Key()] {
		t.Errorf("v1 root %s should be dead (v2 rebuilt that range)", root1.Key())
	}

	// Pruning v2 while keeping v3: v3's append did not touch v2's
	// range, so every v2 node is still read through v3's tree.
	dead2, err := DeadNodes(meta, h, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead2) != 0 {
		t.Errorf("no v2 node should die keeping v3, got %v", dead2)
	}
}

// TestDeadNodesKeptReadsUnaffected cross-checks DeadNodes against the
// resolver: after deleting the dead nodes of pruned versions, every
// kept version still resolves every byte it could resolve before.
func TestDeadNodesKeptReadsUnaffected(t *testing.T) {
	meta := blob.Meta{ID: 1, BlockSize: gcBlock, Replication: 1}
	// A busier schedule: appends growing the span + scattered overwrites.
	h := gcHistory(t,
		desc(0, 2*gcBlock, 2*gcBlock, blob.KindAppend),
		desc(2*gcBlock, 3*gcBlock, 5*gcBlock, blob.KindAppend),
		desc(0, 1*gcBlock, 5*gcBlock, blob.KindWrite),
		desc(5*gcBlock, 2*gcBlock, 7*gcBlock, blob.KindAppend),
		desc(3*gcBlock, 2*gcBlock, 7*gcBlock, blob.KindWrite),
		desc(7*gcBlock, 1*gcBlock, 8*gcBlock, blob.KindAppend),
	)
	st := NewMemStore()
	build := func(v blob.Version) {
		d, _ := h.Desc(v)
		n := int(blob.Blocks(d.Len, meta.BlockSize))
		blocks := make([]BlockRef, n)
		for i := range blocks {
			blocks[i] = BlockRef{
				Key:       blob.BlockKey{Blob: 1, Nonce: uint64(v), Seq: uint32(i)},
				Providers: []string{"p"},
				Len:       meta.BlockSize,
			}
		}
		if _, err := Build(t.Context(), st, meta, h, v, blocks); err != nil {
			t.Fatalf("build v%d: %v", v, err)
		}
	}
	for v := blob.Version(1); v <= 6; v++ {
		build(v)
	}

	const keep = blob.Version(4)
	// Resolve every kept version fully, before GC.
	want := make(map[blob.Version][]Extent)
	for v := keep; v <= 6; v++ {
		ext, err := Resolve(t.Context(), st, meta, v, h.SizeAt(v), blob.Range{Off: 0, Len: h.SizeAt(v)})
		if err != nil {
			t.Fatalf("pre-GC resolve v%d: %v", v, err)
		}
		want[v] = ext
	}

	for k := blob.Version(1); k < keep; k++ {
		dead, err := DeadNodes(meta, h, k, keep)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dead {
			if err := st.Delete(t.Context(), d.ID); err != nil {
				t.Fatal(err)
			}
		}
	}

	for v := keep; v <= 6; v++ {
		got, err := Resolve(t.Context(), st, meta, v, h.SizeAt(v), blob.Range{Off: 0, Len: h.SizeAt(v)})
		if err != nil {
			t.Fatalf("post-GC resolve v%d: %v", v, err)
		}
		if len(got) != len(want[v]) {
			t.Fatalf("v%d: extent count changed %d -> %d", v, len(want[v]), len(got))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[v][i]) {
				t.Errorf("v%d extent %d changed: %+v -> %+v", v, i, want[v][i], got[i])
			}
		}
	}
}

func TestDeadNodesRejectsKeptVersion(t *testing.T) {
	meta := blob.Meta{ID: 1, BlockSize: gcBlock, Replication: 1}
	h := gcHistory(t, desc(0, gcBlock, gcBlock, blob.KindAppend))
	if _, err := DeadNodes(meta, h, 1, 1); err == nil {
		t.Fatal("k == keep should be rejected")
	}
}
