// Package mdtree implements BlobSeer's distributed segment-tree
// metadata (Section III-A3 and ref [12]). One tree is associated with
// every snapshot version of a BLOB; trees share entire subtrees with
// older versions so each write stores only the nodes covering its
// differential patch.
//
// Node identity is deterministic: a node is named by
// (blob, version, offset, span). Version v materializes node R iff R
// intersects v's write range — plus "bridge" nodes created when the
// root span grows past what an older borrowed subtree can cover. All
// other children borrow the newest version w <= v whose write range
// intersects them. Because identity is computable from the write
// descriptor history alone, a writer can weave references to metadata
// that concurrent lower-version writers are *still producing* — the
// paper's key trick for fully parallel metadata generation.
package mdtree

import (
	"context"
	"fmt"
	"sort"

	"blobseer/internal/blob"
)

// NodeID names a segment-tree node. Span is the number of bytes the
// node covers: a power-of-two multiple of the block size for inner
// nodes, exactly the block size for leaves.
type NodeID struct {
	Blob    blob.ID
	Version blob.Version
	Off     int64
	Span    int64
}

// Key renders the DHT key for the node.
func (id NodeID) Key() string {
	return fmt.Sprintf("t%d/%d/%d/%d", id.Blob, id.Version, id.Off, id.Span)
}

// Range returns the byte range the node covers.
func (id NodeID) Range() blob.Range { return blob.Range{Off: id.Off, Len: id.Span} }

// BlockRef locates one stored data block from a leaf.
type BlockRef struct {
	Key       blob.BlockKey
	Providers []string // replica addresses, primary first
	Len       int64    // bytes actually stored (<= block size; last block may be partial)
}

// ChildRef points at a child subtree. Version == blob.NoVersion means
// the child is absent: that region was never written and reads as
// zeros.
type ChildRef struct {
	Version blob.Version
}

// Present reports whether the child exists.
func (c ChildRef) Present() bool { return c.Version != blob.NoVersion }

// Node is one stored tree node.
type Node struct {
	ID    NodeID
	Leaf  bool
	Left  ChildRef // inner nodes only
	Right ChildRef
	Block BlockRef // leaves only
}

// Store is where tree nodes live: the metadata DHT in deployments, an
// in-memory map in unit tests and the simulator.
type Store interface {
	Put(ctx context.Context, n Node) error
	Get(ctx context.Context, id NodeID) (Node, error)
}

// BatchStore is the optional multi-op capability of a Store. Build uses
// PutBatch to ship a whole patch's nodes grouped per provider, and
// Resolve uses GetBatch to fetch a whole tree level in one round-trip
// per provider — the difference between O(nodes) and O(depth) metadata
// latency on the read path. GetBatch omits missing nodes from its
// result instead of failing, but must return an error when a node's
// presence could not be decided (e.g. all replicas unreachable).
type BatchStore interface {
	Store
	PutBatch(ctx context.Context, nodes []Node) error
	GetBatch(ctx context.Context, ids []NodeID) (map[NodeID]Node, error)
}

// putConcurrency bounds parallel node stores during a Build.
const putConcurrency = 16

// Build generates and stores the metadata tree for version v. The
// history h must contain descriptors for all versions <= v of the blob
// (the version manager supplies them — including descriptors of writes
// still in progress, which is what allows concurrent weaving).
// blocks[i] describes the i-th block of v's payload. It returns the
// number of nodes created.
//
// Build never reads existing metadata: everything it needs is derived
// from h, so it proceeds in full parallelism with other writers.
func Build(ctx context.Context, st Store, meta blob.Meta, h *blob.History, v blob.Version, blocks []BlockRef) (int, error) {
	d, ok := h.Desc(v)
	if !ok {
		return 0, fmt.Errorf("mdtree: history has no descriptor for version %d", v)
	}
	update := d.Range()
	if update.IsEmpty() && !d.Aborted {
		return 0, fmt.Errorf("mdtree: version %d has an empty write range", v)
	}
	if update.Off%meta.BlockSize != 0 {
		return 0, fmt.Errorf("mdtree: version %d write offset %d not block-aligned", v, update.Off)
	}
	want := int(blob.Blocks(update.Len, meta.BlockSize))
	if len(blocks) != want {
		return 0, fmt.Errorf("mdtree: version %d: %d block refs for %d blocks", v, len(blocks), want)
	}

	b := &builder{meta: meta, h: h, v: v, update: update, blocks: blocks}
	span := blob.SpanBytes(d.SizeAfter, meta.BlockSize)
	if _, err := b.node(blob.Range{Off: 0, Len: span}); err != nil {
		return 0, err
	}
	if len(b.out) == 0 {
		return 0, fmt.Errorf("mdtree: version %d produced no nodes", v)
	}
	if err := putAll(ctx, st, b.out); err != nil {
		return 0, err
	}
	return len(b.out), nil
}

type builder struct {
	meta   blob.Meta
	h      *blob.History
	v      blob.Version
	update blob.Range
	blocks []BlockRef
	out    []Node
}

// node decides how version v covers range r: absent, borrowed from an
// older version, or materialized at v (recursing into halves).
func (b *builder) node(r blob.Range) (ChildRef, error) {
	w := b.h.LatestIntersecting(r, b.v)
	if w == blob.NoVersion {
		return ChildRef{}, nil // hole: reads as zeros
	}
	if w < b.v {
		// The node exists at version w iff r fits inside w's root span;
		// otherwise we must bridge (materialize at v) even though our
		// own write does not touch r.
		wSpan := blob.SpanBytes(b.h.SizeAt(w), b.meta.BlockSize)
		if r.End() <= wSpan {
			return ChildRef{Version: w}, nil
		}
	}
	// Materialize at v.
	if r.Len == b.meta.BlockSize {
		// Leaves intersecting an older write always fit its span, so a
		// materialized leaf must be one of v's own blocks.
		if w != b.v {
			return ChildRef{}, fmt.Errorf("mdtree: internal: leaf %v materialized for version %d but owned by %d", r, b.v, w)
		}
		idx := (r.Off - b.update.Off) / b.meta.BlockSize
		if idx < 0 || idx >= int64(len(b.blocks)) {
			return ChildRef{}, fmt.Errorf("mdtree: internal: leaf %v outside payload of version %d", r, b.v)
		}
		b.out = append(b.out, Node{
			ID:    NodeID{Blob: b.meta.ID, Version: b.v, Off: r.Off, Span: r.Len},
			Leaf:  true,
			Block: b.blocks[idx],
		})
		return ChildRef{Version: b.v}, nil
	}
	half := r.Len / 2
	left, err := b.node(blob.Range{Off: r.Off, Len: half})
	if err != nil {
		return ChildRef{}, err
	}
	right, err := b.node(blob.Range{Off: r.Off + half, Len: half})
	if err != nil {
		return ChildRef{}, err
	}
	b.out = append(b.out, Node{
		ID:    NodeID{Blob: b.meta.ID, Version: b.v, Off: r.Off, Span: r.Len},
		Left:  left,
		Right: right,
	})
	return ChildRef{Version: b.v}, nil
}

// putAll stores nodes: one batched multi-put when the store supports
// it, bounded-concurrency single puts otherwise. Any failure aborts.
func putAll(ctx context.Context, st Store, nodes []Node) error {
	if bs, ok := st.(BatchStore); ok {
		return bs.PutBatch(ctx, nodes)
	}
	return putAllSingles(ctx, st, nodes)
}

// PlanNodes returns the node IDs version v would materialize, without
// storing anything. The version manager's abort-repair and the
// large-scale simulator use it: repair re-creates exactly these nodes,
// and the simulator charges one DHT message per planned node.
func PlanNodes(meta blob.Meta, h *blob.History, v blob.Version) ([]NodeID, error) {
	d, ok := h.Desc(v)
	if !ok {
		return nil, fmt.Errorf("mdtree: history has no descriptor for version %d", v)
	}
	n := int(blob.Blocks(d.Len, meta.BlockSize))
	b := &builder{meta: meta, h: h, v: v, update: d.Range(), blocks: make([]BlockRef, n)}
	span := blob.SpanBytes(d.SizeAfter, meta.BlockSize)
	if _, err := b.node(blob.Range{Off: 0, Len: span}); err != nil {
		return nil, err
	}
	ids := make([]NodeID, len(b.out))
	for i, nd := range b.out {
		ids[i] = nd.ID
	}
	return ids, nil
}

// Extent is one contiguous piece of a resolved read: Len bytes starting
// at FileOff in the blob. If HasData, the bytes come from Block
// starting at DataOff (bytes past Block.Len read as zeros); otherwise
// the whole extent is a hole and reads as zeros.
type Extent struct {
	FileOff int64
	Len     int64
	HasData bool
	Block   BlockRef
	DataOff int64
}

// Resolve walks the tree of version v and returns the ordered extents
// covering r. size is the blob size at v (from the version manager);
// r is clamped against it. Resolve needs no history.
//
// The walk is a frontier BFS: every tree level is fetched at once, so
// on a BatchStore the whole resolution costs O(depth) batched
// round-trips instead of one blocking round-trip per visited node —
// the metadata hot path the paper requires to never serialize readers.
// On a plain Store the same traversal degrades gracefully to one Get
// per node.
func Resolve(ctx context.Context, st Store, meta blob.Meta, v blob.Version, size int64, r blob.Range) ([]Extent, error) {
	if v == blob.NoVersion || size <= 0 {
		return nil, nil
	}
	if r.Off < 0 {
		return nil, fmt.Errorf("mdtree: negative read offset %d", r.Off)
	}
	if r.End() > size {
		r.Len = size - r.Off
	}
	if r.IsEmpty() {
		return nil, nil
	}
	want := r
	bs, _ := st.(BatchStore)
	span := blob.SpanBytes(size, meta.BlockSize)

	// A slot is one child reference still to be expanded, with the range
	// it covers. The frontier holds one tree level at a time.
	type slot struct {
		ref   ChildRef
		cover blob.Range
	}
	frontier := []slot{{ref: ChildRef{Version: v}, cover: blob.Range{Off: 0, Len: span}}}
	var out []Extent
	ids := make([]NodeID, 0, 16)
	covers := make([]blob.Range, 0, 16)
	for len(frontier) > 0 {
		// Split the level into holes (resolved immediately) and present
		// nodes (fetched together).
		ids, covers = ids[:0], covers[:0]
		for _, s := range frontier {
			part := s.cover.Intersection(want)
			if part.IsEmpty() {
				continue
			}
			if !s.ref.Present() {
				out = append(out, Extent{FileOff: part.Off, Len: part.Len})
				continue
			}
			ids = append(ids, NodeID{Blob: meta.ID, Version: s.ref.Version, Off: s.cover.Off, Span: s.cover.Len})
			covers = append(covers, s.cover)
		}
		if len(ids) == 0 {
			break
		}
		nodes, err := fetchLevel(ctx, st, bs, ids)
		if err != nil {
			return nil, err
		}
		var next []slot
		for i, n := range nodes {
			cover := covers[i]
			part := cover.Intersection(want)
			if n.Leaf {
				out = append(out, Extent{
					FileOff: part.Off,
					Len:     part.Len,
					HasData: true,
					Block:   n.Block,
					DataOff: part.Off - cover.Off,
				})
				continue
			}
			half := cover.Len / 2
			next = append(next,
				slot{ref: n.Left, cover: blob.Range{Off: cover.Off, Len: half}},
				slot{ref: n.Right, cover: blob.Range{Off: cover.Off + half, Len: half}})
		}
		frontier = next
	}
	// Extents surface in level order (a hole two levels up precedes a
	// deeper leaf to its left); they are disjoint, so sorting by offset
	// restores the contract of ordered extents.
	sort.Slice(out, func(i, j int) bool { return out[i].FileOff < out[j].FileOff })
	return out, nil
}

// fetchLevel gets one BFS level's nodes, batched when possible. The
// returned slice parallels ids.
func fetchLevel(ctx context.Context, st Store, bs BatchStore, ids []NodeID) ([]Node, error) {
	nodes := make([]Node, len(ids))
	if bs == nil || len(ids) == 1 {
		for i, id := range ids {
			n, err := st.Get(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("mdtree: fetch %s: %w", id.Key(), err)
			}
			nodes[i] = n
		}
		return nodes, nil
	}
	got, err := bs.GetBatch(ctx, ids)
	if err != nil {
		return nil, fmt.Errorf("mdtree: fetch level (%d nodes): %w", len(ids), err)
	}
	for i, id := range ids {
		n, ok := got[id]
		if !ok {
			return nil, fmt.Errorf("mdtree: fetch %s: node not found", id.Key())
		}
		nodes[i] = n
	}
	return nodes, nil
}
