// Package pmanager implements BlobSeer's provider manager (Section
// III-B): it tracks the data providers that joined the system and
// schedules the placement of newly generated blocks through a
// configurable placement strategy — round-robin by default, which is
// the load-balancing behaviour the paper credits for BSFS's sustained
// throughput.
package pmanager

import (
	"context"
	"errors"
	"sync"
	"time"

	"blobseer/internal/placement"
	"blobseer/internal/rpc"
	"blobseer/internal/wire"
)

// RPC method numbers.
const (
	mRegister uint16 = iota + 1
	mAllocate
	mList
	mMarkDead
	mHeartbeat
)

// CodeNoProviders maps placement.ErrNoProviders across the wire.
const CodeNoProviders uint16 = 30

// State is the provider manager's pure core (no I/O): membership plus
// the placement strategy. Safe for concurrent use; allocation calls are
// serialized so stateful strategies (round-robin cursor, sticky
// windows) behave deterministically.
type State struct {
	mu       sync.Mutex
	nodes    []*placement.Node
	byAddr   map[string]*placement.Node
	lastSeen map[string]time.Time
	strategy placement.Strategy
}

// NewState returns a core using the given strategy.
func NewState(strategy placement.Strategy) *State {
	return &State{
		byAddr:   make(map[string]*placement.Node),
		lastSeen: make(map[string]time.Time),
		strategy: strategy,
	}
}

// Register adds (or revives) a provider.
func (s *State) Register(addr, host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Alive = true
		n.Host = host
		s.lastSeen[addr] = time.Now()
		return
	}
	n := &placement.Node{Addr: addr, Host: host, Alive: true}
	s.nodes = append(s.nodes, n)
	s.byAddr[addr] = n
	s.lastSeen[addr] = time.Now()
}

// Heartbeat refreshes a provider's liveness.
func (s *State) Heartbeat(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Alive = true
		s.lastSeen[addr] = time.Now()
	}
}

// MarkDead removes a provider from allocation (failure injection,
// failed-write feedback).
func (s *State) MarkDead(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Alive = false
	}
}

// ExpireStale marks providers silent for longer than maxAge as dead
// and returns how many it expired.
func (s *State) ExpireStale(maxAge time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-maxAge)
	n := 0
	for addr, at := range s.lastSeen {
		if at.Before(cutoff) && s.byAddr[addr].Alive {
			s.byAddr[addr].Alive = false
			n++
		}
	}
	return n
}

// Allocate picks, for each of nBlocks blocks, `replicas` distinct
// provider addresses.
func (s *State) Allocate(nBlocks, replicas int, clientHost string) ([][]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	targets, err := s.strategy.Pick(nBlocks, replicas, clientHost, s.nodes)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(targets))
	for i, set := range targets {
		addrs := make([]string, len(set))
		for j, nd := range set {
			addrs[j] = nd.Addr
		}
		out[i] = addrs
	}
	return out, nil
}

// ProviderInfo is one row of the provider listing.
type ProviderInfo struct {
	Addr   string
	Host   string
	Blocks int64
	Alive  bool
}

// List returns a snapshot of the membership.
func (s *State) List() []ProviderInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProviderInfo, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = ProviderInfo{Addr: n.Addr, Host: n.Host, Blocks: n.Blocks, Alive: n.Alive}
	}
	return out
}

// Layout returns blocks-per-provider counts (Figure 3(b) metric).
func (s *State) Layout() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return placement.Layout(s.nodes)
}

// Service is the RPC shell around State.
type Service struct {
	state *State
}

// NewService wraps state.
func NewService(state *State) *Service { return &Service{state: state} }

// State exposes the core.
func (s *Service) State() *State { return s.state }

// Mux returns the RPC dispatch table.
func (s *Service) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mRegister, s.handleRegister)
	m.Handle(mAllocate, s.handleAllocate)
	m.Handle(mList, s.handleList)
	m.Handle(mMarkDead, s.handleMarkDead)
	m.Handle(mHeartbeat, s.handleHeartbeat)
	return m
}

func (s *Service) handleRegister(p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	host := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.Register(addr, host)
	return nil, nil
}

func (s *Service) handleHeartbeat(p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.Heartbeat(addr)
	return nil, nil
}

func (s *Service) handleMarkDead(p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.MarkDead(addr)
	return nil, nil
}

func (s *Service) handleAllocate(p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	nBlocks := int(r.U32())
	replicas := int(r.U32())
	clientHost := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	targets, err := s.state.Allocate(nBlocks, replicas, clientHost)
	if err != nil {
		if errors.Is(err, placement.ErrNoProviders) {
			return nil, rpc.CodedError(CodeNoProviders, err.Error())
		}
		return nil, err
	}
	b := wire.NewBuffer(64)
	b.U32(uint32(len(targets)))
	for _, set := range targets {
		b.StringSlice(set)
	}
	return b.Bytes(), nil
}

func (s *Service) handleList(p []byte) ([]byte, error) {
	infos := s.state.List()
	b := wire.NewBuffer(64)
	b.U32(uint32(len(infos)))
	for _, in := range infos {
		b.String(in.Addr)
		b.String(in.Host)
		b.I64(in.Blocks)
		b.Bool(in.Alive)
	}
	return b.Bytes(), nil
}

// Client is the provider-manager RPC client.
type Client struct {
	pool *rpc.Pool
	addr string
}

// NewClient returns a client for the provider manager at addr.
func NewClient(pool *rpc.Pool, addr string) *Client {
	return &Client{pool: pool, addr: addr}
}

func (c *Client) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	cl, err := c.pool.Get(c.addr)
	if err != nil {
		return nil, err
	}
	return cl.Call(ctx, m, payload)
}

// Register announces a provider.
func (c *Client) Register(ctx context.Context, addr, host string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	b.String(host)
	_, err := c.call(ctx, mRegister, b.Bytes())
	return err
}

// Heartbeat refreshes liveness.
func (c *Client) Heartbeat(ctx context.Context, addr string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	_, err := c.call(ctx, mHeartbeat, b.Bytes())
	return err
}

// MarkDead removes a provider from allocation.
func (c *Client) MarkDead(ctx context.Context, addr string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	_, err := c.call(ctx, mMarkDead, b.Bytes())
	return err
}

// Allocate requests placement targets for nBlocks blocks.
func (c *Client) Allocate(ctx context.Context, nBlocks, replicas int, clientHost string) ([][]string, error) {
	b := wire.NewBuffer(16)
	b.U32(uint32(nBlocks))
	b.U32(uint32(replicas))
	b.String(clientHost)
	resp, err := c.call(ctx, mAllocate, b.Bytes())
	if err != nil {
		if rpc.CodeOf(err) == CodeNoProviders {
			return nil, placement.ErrNoProviders
		}
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([][]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.StringSlice())
	}
	return out, r.Err()
}

// List fetches the membership snapshot.
func (c *Client) List(ctx context.Context) ([]ProviderInfo, error) {
	resp, err := c.call(ctx, mList, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]ProviderInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, ProviderInfo{
			Addr:   r.String(),
			Host:   r.String(),
			Blocks: r.I64(),
			Alive:  r.Bool(),
		})
	}
	return out, r.Err()
}
