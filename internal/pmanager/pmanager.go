// Package pmanager implements BlobSeer's provider manager (Section
// III-B): it tracks the data providers that joined the system and
// schedules the placement of newly generated blocks through a
// configurable placement strategy — round-robin by default, which is
// the load-balancing behaviour the paper credits for BSFS's sustained
// throughput.
package pmanager

import (
	"context"
	"errors"
	"sync"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/placement"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/wire"
)

// RPC method numbers.
const (
	mRegister uint16 = iota + 1
	mAllocate
	mList
	mMarkDead
	mHeartbeat
	mDecommission
)

// methodNames maps method numbers to operation names (method - 1).
var methodNames = [mDecommission]string{
	"register", "allocate", "list", "mark_dead", "heartbeat", "decommission",
}

// MethodName maps an RPC method number to its operation name, for the
// server-side tracer.
func MethodName(m uint16) string {
	if m >= 1 && m <= mDecommission {
		return methodNames[m-1]
	}
	return "unknown"
}

// CodeNoProviders maps placement.ErrNoProviders across the wire.
const CodeNoProviders uint16 = 30

// State is the provider manager's pure core (no I/O): membership plus
// the placement strategy. Safe for concurrent use; allocation calls are
// serialized so stateful strategies (round-robin cursor, sticky
// windows) behave deterministically.
type State struct {
	mu       sync.Mutex
	nodes    []*placement.Node
	byAddr   map[string]*placement.Node
	lastSeen map[string]time.Time
	// reported holds the latest heartbeat-carried store statistics per
	// provider. Node.Blocks is an allocation-time estimate the placement
	// strategies maintain for their own balance decisions; listings and
	// layout metrics prefer the reported truth, which reflects deletes,
	// failed writes and repair copies the estimate never sees.
	reported map[string]store.Stats
	strategy placement.Strategy
}

// NewState returns a core using the given strategy.
func NewState(strategy placement.Strategy) *State {
	return &State{
		byAddr:   make(map[string]*placement.Node),
		lastSeen: make(map[string]time.Time),
		reported: make(map[string]store.Stats),
		strategy: strategy,
	}
}

// Register adds (or revives) a provider. Re-registering clears a
// draining mark: an operator re-adding a decommissioned node starts it
// fresh.
func (s *State) Register(addr, host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Alive = true
		n.Draining = false
		n.Host = host
		s.lastSeen[addr] = time.Now()
		return
	}
	n := &placement.Node{Addr: addr, Host: host, Alive: true}
	s.nodes = append(s.nodes, n)
	s.byAddr[addr] = n
	s.lastSeen[addr] = time.Now()
}

// Heartbeat refreshes a provider's liveness and records the store
// statistics it carried. A draining provider stays draining — liveness
// and decommissioning are orthogonal. The return value reports whether
// the provider is known: false tells a heartbeating provider that the
// manager has no record of it (a restarted manager lost its
// membership) and it must Register again.
func (s *State) Heartbeat(addr string, stats store.Stats) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.byAddr[addr]
	if !ok {
		return false
	}
	n.Alive = true
	s.lastSeen[addr] = time.Now()
	s.reported[addr] = stats
	return true
}

// MarkDead removes a provider from allocation (failure injection,
// failed-write feedback, heartbeat expiry).
func (s *State) MarkDead(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Alive = false
	}
}

// Decommission marks a provider as draining: it leaves the allocation
// pool immediately but keeps serving reads and repair-source traffic
// until the repair plane has re-replicated its blocks elsewhere
// (drain-then-retire). Heartbeats do not clear the mark; Register does.
func (s *State) Decommission(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.byAddr[addr]; ok {
		n.Draining = true
	}
}

// ExpireStale marks providers silent for longer than maxAge as dead
// and returns how many it expired.
func (s *State) ExpireStale(maxAge time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-maxAge)
	n := 0
	for addr, at := range s.lastSeen {
		if at.Before(cutoff) && s.byAddr[addr].Alive {
			s.byAddr[addr].Alive = false
			n++
		}
	}
	return n
}

// Allocate picks, for each of nBlocks blocks, `replicas` distinct
// provider addresses.
func (s *State) Allocate(nBlocks, replicas int, clientHost string) ([][]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	targets, err := s.strategy.Pick(nBlocks, replicas, clientHost, s.nodes)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(targets))
	for i, set := range targets {
		addrs := make([]string, len(set))
		for j, nd := range set {
			addrs[j] = nd.Addr
		}
		out[i] = addrs
	}
	return out, nil
}

// ProviderInfo is one row of the provider listing.
type ProviderInfo struct {
	Addr     string
	Host     string
	Blocks   int64 // heartbeat-reported item count (allocation estimate until the first heartbeat)
	Bytes    int64 // heartbeat-reported payload bytes (0 until the first heartbeat)
	Alive    bool
	Draining bool
	// Tiers carries the per-tier occupancy breakdown when the provider
	// runs a tiered store (nil for single-tier backends).
	Tiers []store.TierStat
}

// List returns a snapshot of the membership. Block/byte counts come
// from the latest heartbeat when one has been received, so they reflect
// deletes, failed writes and repair copies — not just allocations.
func (s *State) List() []ProviderInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProviderInfo, len(s.nodes))
	for i, n := range s.nodes {
		info := ProviderInfo{Addr: n.Addr, Host: n.Host, Blocks: n.Blocks, Alive: n.Alive, Draining: n.Draining}
		if st, ok := s.reported[n.Addr]; ok {
			info.Blocks = st.Items
			info.Bytes = st.Bytes
			info.Tiers = st.Tiers
		}
		out[i] = info
	}
	return out
}

// Membership counts the pool by state: live (alive, not draining),
// draining, and total registered.
func (s *State) Membership() (live, draining, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		switch {
		case n.Draining:
			draining++
		case n.Alive:
			live++
		}
	}
	return live, draining, len(s.nodes)
}

// MaxHeartbeatLag returns the longest silence among alive providers —
// the failure detector's leading indicator (it hits maxAge right
// before an expiry fires). Zero with no alive providers.
func (s *State) MaxHeartbeatLag() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max time.Duration
	for addr, at := range s.lastSeen {
		if n, ok := s.byAddr[addr]; ok && n.Alive {
			if lag := time.Since(at); lag > max {
				max = lag
			}
		}
	}
	return max
}

// Layout returns blocks-per-provider counts (Figure 3(b) metric),
// preferring heartbeat-reported reality over allocation estimates for
// providers that have reported.
func (s *State) Layout() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := placement.Layout(s.nodes)
	for i, n := range s.nodes {
		if st, ok := s.reported[n.Addr]; ok {
			counts[i] = int(st.Items)
		}
	}
	return counts
}

// Service is the RPC shell around State, plus the liveness-expiry
// ticker that retires silent providers from the allocation pool.
type Service struct {
	state *State
	reg   *metrics.Registry

	expiryMu   sync.Mutex
	stopExpiry chan struct{}
}

// NewService wraps state.
func NewService(state *State) *Service {
	s := &Service{state: state, reg: metrics.NewRegistry()}
	s.reg.GaugeFunc("providers_live", func() int64 {
		live, _, _ := state.Membership()
		return int64(live)
	})
	s.reg.GaugeFunc("providers_draining", func() int64 {
		_, draining, _ := state.Membership()
		return int64(draining)
	})
	s.reg.GaugeFunc("providers_total", func() int64 {
		_, _, total := state.Membership()
		return int64(total)
	})
	s.reg.GaugeFunc("heartbeat_lag_ms", func() int64 {
		return state.MaxHeartbeatLag().Milliseconds()
	})
	return s
}

// State exposes the core.
func (s *Service) State() *State { return s.state }

// Metrics exposes the manager's registry (membership gauges, heartbeat
// lag, allocation counters) for HTTP export.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// StartExpiry launches the liveness loop: every interval, providers
// silent for longer than maxAge are marked dead and leave the
// allocation pool. Stop with StopExpiry. This is what turns the
// Heartbeat/ExpireStale machinery into an actual failure detector —
// without it a crashed provider keeps receiving allocations forever.
func (s *Service) StartExpiry(maxAge, interval time.Duration) {
	s.expiryMu.Lock()
	defer s.expiryMu.Unlock()
	if s.stopExpiry != nil {
		return // already running
	}
	stop := make(chan struct{})
	s.stopExpiry = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if n := s.state.ExpireStale(maxAge); n > 0 {
					s.reg.Counter("expired").Add(int64(n))
				}
			}
		}
	}()
}

// StopExpiry terminates the liveness loop.
func (s *Service) StopExpiry() {
	s.expiryMu.Lock()
	defer s.expiryMu.Unlock()
	if s.stopExpiry != nil {
		close(s.stopExpiry)
		s.stopExpiry = nil
	}
}

// Mux returns the RPC dispatch table.
func (s *Service) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mRegister, s.handleRegister)
	m.Handle(mAllocate, s.handleAllocate)
	m.Handle(mList, s.handleList)
	m.Handle(mMarkDead, s.handleMarkDead)
	m.Handle(mHeartbeat, s.handleHeartbeat)
	m.Handle(mDecommission, s.handleDecommission)
	return m
}

func (s *Service) handleRegister(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	host := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.Register(addr, host)
	s.reg.Counter("registrations").Inc()
	return nil, nil
}

func (s *Service) handleHeartbeat(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	st := store.Stats{Items: r.I64(), Bytes: r.I64()}
	st.Tiers = store.DecodeTiers(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	known := s.state.Heartbeat(addr, st)
	s.reg.Counter("heartbeats").Inc()
	if !known {
		s.reg.Counter("heartbeats_unknown").Inc()
	}
	b := wire.NewBuffer(1)
	b.Bool(known)
	return b.Bytes(), nil
}

func (s *Service) handleMarkDead(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.MarkDead(addr)
	s.reg.Counter("mark_dead").Inc()
	return nil, nil
}

func (s *Service) handleDecommission(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.state.Decommission(addr)
	s.reg.Counter("decommissions").Inc()
	return nil, nil
}

func (s *Service) handleAllocate(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	nBlocks := int(r.U32())
	replicas := int(r.U32())
	clientHost := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	targets, err := s.state.Allocate(nBlocks, replicas, clientHost)
	s.reg.Counter("allocations").Inc()
	s.reg.Counter("blocks_allocated").Add(int64(nBlocks))
	if err != nil {
		s.reg.Counter("allocation_errors").Inc()
		if errors.Is(err, placement.ErrNoProviders) {
			return nil, rpc.CodedError(CodeNoProviders, err.Error())
		}
		return nil, err
	}
	b := wire.NewBuffer(64)
	b.U32(uint32(len(targets)))
	for _, set := range targets {
		b.StringSlice(set)
	}
	return b.Bytes(), nil
}

func (s *Service) handleList(ctx context.Context, p []byte) ([]byte, error) {
	infos := s.state.List()
	b := wire.NewBuffer(64)
	b.U32(uint32(len(infos)))
	for _, in := range infos {
		b.String(in.Addr)
		b.String(in.Host)
		b.I64(in.Blocks)
		b.I64(in.Bytes)
		b.Bool(in.Alive)
		b.Bool(in.Draining)
		store.EncodeTiers(b, in.Tiers)
	}
	return b.Bytes(), nil
}

// Client is the provider-manager RPC client.
type Client struct {
	pool  *rpc.Pool
	addr  string
	retry rpc.Backoff
}

// NewClient returns a client for the provider manager at addr. All
// provider-manager operations (Register, Heartbeat, Allocate, List)
// are idempotent or safely repeatable, so transport failures are
// retried with rpc.DefaultBackoff.
func NewClient(pool *rpc.Pool, addr string) *Client {
	return &Client{pool: pool, addr: addr, retry: rpc.DefaultBackoff}
}

// SetRetry overrides the client's retry schedule.
func (c *Client) SetRetry(b rpc.Backoff) { c.retry = b }

func (c *Client) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	var resp []byte
	err := rpc.Retry(ctx, c.retry, func(ctx context.Context) error {
		cl, err := c.pool.Get(c.addr)
		if err != nil {
			return err
		}
		resp, err = cl.Call(ctx, m, payload)
		return err
	})
	return resp, err
}

// Register announces a provider.
func (c *Client) Register(ctx context.Context, addr, host string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	b.String(host)
	_, err := c.call(ctx, mRegister, b.Bytes())
	return err
}

// Heartbeat refreshes liveness, carrying the provider's live store
// statistics so the manager's listings track reality. known == false
// means the manager does not know this provider (it restarted and lost
// its membership): the caller must Register again.
func (c *Client) Heartbeat(ctx context.Context, addr string, stats store.Stats) (known bool, err error) {
	b := wire.NewBuffer(32 + 32*len(stats.Tiers))
	b.String(addr)
	b.I64(stats.Items)
	b.I64(stats.Bytes)
	store.EncodeTiers(b, stats.Tiers)
	resp, err := c.call(ctx, mHeartbeat, b.Bytes())
	if err != nil {
		return false, err
	}
	r := wire.NewReader(resp)
	known = r.Bool()
	return known, r.Err()
}

// Decommission marks a provider draining (out of the allocation pool,
// still a read/repair source).
func (c *Client) Decommission(ctx context.Context, addr string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	_, err := c.call(ctx, mDecommission, b.Bytes())
	return err
}

// MarkDead removes a provider from allocation.
func (c *Client) MarkDead(ctx context.Context, addr string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	_, err := c.call(ctx, mMarkDead, b.Bytes())
	return err
}

// Allocate requests placement targets for nBlocks blocks.
func (c *Client) Allocate(ctx context.Context, nBlocks, replicas int, clientHost string) ([][]string, error) {
	b := wire.NewBuffer(16)
	b.U32(uint32(nBlocks))
	b.U32(uint32(replicas))
	b.String(clientHost)
	resp, err := c.call(ctx, mAllocate, b.Bytes())
	if err != nil {
		if rpc.CodeOf(err) == CodeNoProviders {
			return nil, placement.ErrNoProviders
		}
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([][]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.StringSlice())
	}
	return out, r.Err()
}

// List fetches the membership snapshot.
func (c *Client) List(ctx context.Context) ([]ProviderInfo, error) {
	resp, err := c.call(ctx, mList, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]ProviderInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, ProviderInfo{
			Addr:     r.String(),
			Host:     r.String(),
			Blocks:   r.I64(),
			Bytes:    r.I64(),
			Alive:    r.Bool(),
			Draining: r.Bool(),
			Tiers:    store.DecodeTiers(r),
		})
	}
	return out, r.Err()
}
