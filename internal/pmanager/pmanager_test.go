package pmanager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobseer/internal/placement"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
)

func newState(n int) *State {
	s := NewState(placement.NewRoundRobin())
	for i := 0; i < n; i++ {
		s.Register(fmt.Sprintf("p%d", i), fmt.Sprintf("h%d", i))
	}
	return s
}

func TestAllocateRoundRobin(t *testing.T) {
	s := newState(4)
	targets, err := s.Allocate(8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 8 {
		t.Fatalf("got %d targets", len(targets))
	}
	layout := s.Layout()
	for i, c := range layout {
		if c != 2 {
			t.Errorf("provider %d has %d blocks, want 2", i, c)
		}
	}
}

func TestAllocateNoProviders(t *testing.T) {
	s := NewState(placement.NewRoundRobin())
	if _, err := s.Allocate(1, 1, ""); !errors.Is(err, placement.ErrNoProviders) {
		t.Errorf("err = %v", err)
	}
}

func TestMarkDeadExcludes(t *testing.T) {
	s := newState(3)
	s.MarkDead("p1")
	targets, err := s.Allocate(10, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0] == "p1" {
			t.Fatal("allocated on dead provider")
		}
	}
	// Re-register revives.
	s.Register("p1", "h1")
	infos := s.List()
	for _, in := range infos {
		if in.Addr == "p1" && !in.Alive {
			t.Error("re-registered provider still dead")
		}
	}
}

func TestExpireStale(t *testing.T) {
	s := newState(2)
	time.Sleep(5 * time.Millisecond)
	if n := s.ExpireStale(time.Millisecond); n != 2 {
		t.Errorf("expired %d, want 2", n)
	}
	s.Heartbeat("p0", store.Stats{})
	// p0 revived by heartbeat... heartbeat only refreshes alive nodes?
	// Heartbeat marks alive again.
	infos := s.List()
	var p0Alive bool
	for _, in := range infos {
		if in.Addr == "p0" {
			p0Alive = in.Alive
		}
	}
	if !p0Alive {
		t.Error("heartbeat did not revive provider")
	}
}

// TestHeartbeatStatsDriveListAndLayout pins the List/Layout drift fix:
// block counts reflect heartbeat-reported store contents, not the
// allocation-time estimates (which never see deletes or failed writes).
func TestHeartbeatStatsDriveListAndLayout(t *testing.T) {
	s := newState(3)
	// Allocation estimates say 4 blocks each.
	if _, err := s.Allocate(12, 1, ""); err != nil {
		t.Fatal(err)
	}
	// p1's heartbeat reports reality: only 1 block survived (e.g. a
	// failed write was garbage-collected).
	s.Heartbeat("p1", store.Stats{Items: 1, Bytes: 100})
	for _, in := range s.List() {
		want := int64(4) // estimate, no heartbeat yet
		if in.Addr == "p1" {
			want = 1
		}
		if in.Blocks != want {
			t.Errorf("%s: Blocks = %d, want %d", in.Addr, in.Blocks, want)
		}
	}
	layout := s.Layout()
	if layout[1] != 1 {
		t.Errorf("Layout[p1] = %d, want heartbeat-reported 1", layout[1])
	}
	if layout[0] != 4 || layout[2] != 4 {
		t.Errorf("Layout estimates clobbered: %v", layout)
	}
}

func TestDecommissionExcludesFromAllocateButStaysAlive(t *testing.T) {
	s := newState(3)
	s.Decommission("p1")
	targets, err := s.Allocate(9, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0] == "p1" {
			t.Fatal("allocated on draining provider")
		}
	}
	for _, in := range s.List() {
		if in.Addr == "p1" {
			if !in.Alive || !in.Draining {
				t.Errorf("draining provider state = %+v, want alive and draining", in)
			}
		}
	}
	// Heartbeats keep it alive but never clear the drain...
	s.Heartbeat("p1", store.Stats{})
	for _, in := range s.List() {
		if in.Addr == "p1" && !in.Draining {
			t.Error("heartbeat cleared the draining mark")
		}
	}
	// ...while an explicit re-registration does.
	s.Register("p1", "h1")
	for _, in := range s.List() {
		if in.Addr == "p1" && in.Draining {
			t.Error("re-registration kept the draining mark")
		}
	}
}

// TestExpiryLoopExcludesSilentProvider is the liveness regression: with
// the expiry ticker running, a provider that stops heartbeating is out
// of the allocation pool within one ticker period past its expiry age,
// while a heartbeating one stays in.
func TestExpiryLoopExcludesSilentProvider(t *testing.T) {
	const maxAge = 100 * time.Millisecond
	s := newState(2)
	svc := NewService(s)
	svc.StartExpiry(maxAge, maxAge/2)
	defer svc.StopExpiry()

	// p0 heartbeats synchronously inside the poll loop (a timer
	// goroutine racing the sweep on loaded CI runners would make the
	// liveness assertion flaky); p1 is silent. Within maxAge + one
	// ticker period the silent provider must be gone from allocations.
	deadline := time.Now().Add(maxAge + maxAge/2 + 2*time.Second)
	for {
		s.Heartbeat("p0", store.Stats{})
		targets, err := s.Allocate(4, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		sawDead := false
		for _, set := range targets {
			if set[0] == "p1" {
				sawDead = true
			}
		}
		if !sawDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent provider still receiving allocations past expiry deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A heartbeat immediately before List pins p0 alive regardless of
	// how long the loop above took.
	s.Heartbeat("p0", store.Stats{})
	for _, in := range s.List() {
		switch in.Addr {
		case "p0":
			if !in.Alive {
				t.Error("heartbeating provider expired")
			}
		case "p1":
			if in.Alive {
				t.Error("silent provider still alive in List")
			}
		}
	}
}

// TestHeartbeatExpiryRace hammers heartbeats, expiry sweeps and
// listings concurrently; the -race CI step is the assertion.
func TestHeartbeatExpiryRace(t *testing.T) {
	s := newState(4)
	svc := NewService(s)
	svc.StartExpiry(time.Millisecond, time.Millisecond)
	defer svc.StopExpiry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr := fmt.Sprintf("p%d", i)
			for j := 0; j < 200; j++ {
				s.Heartbeat(addr, store.Stats{Items: int64(j)})
				if j%10 == 0 {
					s.List()
					s.Layout()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			if _, err := s.Allocate(1, 1, ""); err != nil {
				return // every provider momentarily expired; fine
			}
		}
	}()
	wg.Wait()
}

func TestServiceRPCRoundTrip(t *testing.T) {
	n := rpc.NewInprocNetwork()
	svc := NewService(newState(3))
	lis, err := n.Listen("pmanager")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()
	pool := rpc.NewPool(n.Dial)
	defer pool.Close()
	c := NewClient(pool, "pmanager")
	ctx := context.Background()

	if err := c.Register(ctx, "p9", "h9"); err != nil {
		t.Fatal(err)
	}
	targets, err := c.Allocate(ctx, 4, 2, "h0")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 4 || len(targets[0]) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	infos, err := c.List(ctx)
	if err != nil || len(infos) != 4 {
		t.Fatalf("List = %v, %v", infos, err)
	}
	known, err := c.Heartbeat(ctx, "p9", store.Stats{Items: 3, Bytes: 300})
	if err != nil || !known {
		t.Fatalf("Heartbeat of registered provider = known %v, %v", known, err)
	}
	// A heartbeat from a provider the manager does not know (it
	// restarted and lost membership) reports known=false so the
	// provider re-registers.
	if known, err := c.Heartbeat(ctx, "stranger", store.Stats{}); err != nil || known {
		t.Fatalf("Heartbeat of unknown provider = known %v, %v; want false", known, err)
	}
	infos, _ = c.List(ctx)
	for _, in := range infos {
		if in.Addr == "p9" && (in.Blocks != 3 || in.Bytes != 300) {
			t.Errorf("heartbeat stats not reflected in List: %+v", in)
		}
	}
	if err := c.MarkDead(ctx, "p9"); err != nil {
		t.Fatal(err)
	}
	infos, _ = c.List(ctx)
	for _, in := range infos {
		if in.Addr == "p9" && in.Alive {
			t.Error("MarkDead over RPC did not stick")
		}
	}
}

func TestServiceNoProvidersOverRPC(t *testing.T) {
	n := rpc.NewInprocNetwork()
	svc := NewService(NewState(placement.NewRoundRobin()))
	lis, _ := n.Listen("pm")
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()
	pool := rpc.NewPool(n.Dial)
	defer pool.Close()
	c := NewClient(pool, "pm")
	if _, err := c.Allocate(context.Background(), 1, 1, ""); !errors.Is(err, placement.ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}
