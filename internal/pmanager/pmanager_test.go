package pmanager

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"blobseer/internal/placement"
	"blobseer/internal/rpc"
)

func newState(n int) *State {
	s := NewState(placement.NewRoundRobin())
	for i := 0; i < n; i++ {
		s.Register(fmt.Sprintf("p%d", i), fmt.Sprintf("h%d", i))
	}
	return s
}

func TestAllocateRoundRobin(t *testing.T) {
	s := newState(4)
	targets, err := s.Allocate(8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 8 {
		t.Fatalf("got %d targets", len(targets))
	}
	layout := s.Layout()
	for i, c := range layout {
		if c != 2 {
			t.Errorf("provider %d has %d blocks, want 2", i, c)
		}
	}
}

func TestAllocateNoProviders(t *testing.T) {
	s := NewState(placement.NewRoundRobin())
	if _, err := s.Allocate(1, 1, ""); !errors.Is(err, placement.ErrNoProviders) {
		t.Errorf("err = %v", err)
	}
}

func TestMarkDeadExcludes(t *testing.T) {
	s := newState(3)
	s.MarkDead("p1")
	targets, err := s.Allocate(10, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0] == "p1" {
			t.Fatal("allocated on dead provider")
		}
	}
	// Re-register revives.
	s.Register("p1", "h1")
	infos := s.List()
	for _, in := range infos {
		if in.Addr == "p1" && !in.Alive {
			t.Error("re-registered provider still dead")
		}
	}
}

func TestExpireStale(t *testing.T) {
	s := newState(2)
	time.Sleep(5 * time.Millisecond)
	if n := s.ExpireStale(time.Millisecond); n != 2 {
		t.Errorf("expired %d, want 2", n)
	}
	s.Heartbeat("p0")
	// p0 revived by heartbeat... heartbeat only refreshes alive nodes?
	// Heartbeat marks alive again.
	infos := s.List()
	var p0Alive bool
	for _, in := range infos {
		if in.Addr == "p0" {
			p0Alive = in.Alive
		}
	}
	if !p0Alive {
		t.Error("heartbeat did not revive provider")
	}
}

func TestServiceRPCRoundTrip(t *testing.T) {
	n := rpc.NewInprocNetwork()
	svc := NewService(newState(3))
	lis, err := n.Listen("pmanager")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()
	pool := rpc.NewPool(n.Dial)
	defer pool.Close()
	c := NewClient(pool, "pmanager")
	ctx := context.Background()

	if err := c.Register(ctx, "p9", "h9"); err != nil {
		t.Fatal(err)
	}
	targets, err := c.Allocate(ctx, 4, 2, "h0")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 4 || len(targets[0]) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	infos, err := c.List(ctx)
	if err != nil || len(infos) != 4 {
		t.Fatalf("List = %v, %v", infos, err)
	}
	if err := c.Heartbeat(ctx, "p9"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDead(ctx, "p9"); err != nil {
		t.Fatal(err)
	}
	infos, _ = c.List(ctx)
	for _, in := range infos {
		if in.Addr == "p9" && in.Alive {
			t.Error("MarkDead over RPC did not stick")
		}
	}
}

func TestServiceNoProvidersOverRPC(t *testing.T) {
	n := rpc.NewInprocNetwork()
	svc := NewService(NewState(placement.NewRoundRobin()))
	lis, _ := n.Listen("pm")
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()
	pool := rpc.NewPool(n.Dial)
	defer pool.Close()
	c := NewClient(pool, "pm")
	if _, err := c.Allocate(context.Background(), 1, 1, ""); !errors.Is(err, placement.ErrNoProviders) {
		t.Errorf("err = %v, want ErrNoProviders", err)
	}
}
