package bsfs_test

import (
	"bytes"
	"context"
	"io"
	"testing"
)

// TestBranchDivergesIndependently: branch a file at an old snapshot,
// then write to both; each evolves alone (Section II-A's "branching a
// dataset into two independent datasets").
func TestBranchDivergesIndependently(t *testing.T) {
	cl := copyCluster(t)
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}

	// v1 = two 'a' blocks; v2 appends two 'b' blocks.
	w, err := fsys.Create(ctx, "/main", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte{'a'}, int(2*copyBlock))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v1, err := fsys.Versions(ctx, "/main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := fsys.Append(ctx, "/main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(bytes.Repeat([]byte{'b'}, int(2*copyBlock))); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Branch from v1 (before the 'b' append).
	if err := fsys.Branch(ctx, "/main", uint64(v1), "/branch", 3); err != nil {
		t.Fatal(err)
	}

	// Evolve the branch with its own data.
	ba, err := fsys.Append(ctx, "/branch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ba.Write(bytes.Repeat([]byte{'z'}, int(copyBlock))); err != nil {
		t.Fatal(err)
	}
	if err := ba.Close(); err != nil {
		t.Fatal(err)
	}

	readAll := func(path string) []byte {
		t.Helper()
		r, err := fsys.Open(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	main := readAll("/main")
	branch := readAll("/branch")
	wantMain := append(bytes.Repeat([]byte{'a'}, int(2*copyBlock)), bytes.Repeat([]byte{'b'}, int(2*copyBlock))...)
	wantBranch := append(bytes.Repeat([]byte{'a'}, int(2*copyBlock)), bytes.Repeat([]byte{'z'}, int(copyBlock))...)
	if !bytes.Equal(main, wantMain) {
		t.Fatal("main diverged from its own history")
	}
	if !bytes.Equal(branch, wantBranch) {
		t.Fatal("branch does not contain snapshot + its own append")
	}
}

// TestBranchOfUnpublishedVersionFails: branching needs a published
// snapshot.
func TestBranchOfUnpublishedVersionFails(t *testing.T) {
	cl := copyCluster(t)
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Branch(ctx, "/f", 99, "/g", 2); err == nil {
		t.Fatal("branching a nonexistent version should fail")
	}
}
