package bsfs_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/fs"
)

// startPipelinedFS deploys a cluster whose BSFS clients use the given
// streaming windows (negative disables, 0 picks the defaults).
func startPipelinedFS(t *testing.T, readahead, writeBehind int) (*bsfs.FS, *cluster.BlobSeer) {
	t.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders:    4,
		MetaProviders:    2,
		BlockSize:        B,
		ReadaheadBlocks:  readahead,
		WriteBehindDepth: writeBehind,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	f, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	return f, cl
}

// TestPipelinedRoundTrip streams a multi-block file through wide
// readahead and write-behind windows using Hadoop-sized 4 KB calls and
// checks byte equality — the pipelined path must be invisible to the
// application.
func TestPipelinedRoundTrip(t *testing.T) {
	f, _ := startPipelinedFS(t, 3, 3)
	ctx := context.Background()
	data := pattern('P', 7*B+321)

	w, err := f.Create(ctx, "/pipe/file", true)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 4096 {
		end := min(off+4096, len(data))
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := f.Open(ctx, "/pipe/file")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []byte
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("pipelined round trip mismatch: %d vs %d bytes", len(got), len(data))
	}

	st := r.(bsfs.PipelinedReader).ReadStats()
	if st.Prefetched == 0 || st.PrefetchHits == 0 {
		t.Errorf("sequential stream should use the readahead window, stats = %+v", st)
	}
}

// TestReadaheadCanceledOnSeek: a sequential read at the start of the
// file launches prefetches for the following blocks; seeking away must
// drop (and cancel) the unconsumed window rather than let it fetch
// blocks the stream no longer wants.
func TestReadaheadCanceledOnSeek(t *testing.T) {
	f, _ := startPipelinedFS(t, 3, 0)
	ctx := context.Background()
	data := pattern('S', 8*B)
	writeFile(t, f, "/pipe/seek", data)

	r, err := f.Open(ctx, "/pipe/seek")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Consume a little of block 0: blocks 1..3 enter the window.
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if st := r.(bsfs.PipelinedReader).ReadStats(); st.Prefetched == 0 {
		t.Fatalf("sequential start should prefetch, stats = %+v", st)
	}

	// Jump to the last block: the prefetched window is dead.
	if _, err := r.Seek(7*B, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	st := r.(bsfs.PipelinedReader).ReadStats()
	if st.Canceled == 0 {
		t.Errorf("Seek away should cancel the readahead window, stats = %+v", st)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[7*B:]) {
		t.Error("read after seek mismatch")
	}
}

// TestReaderSeekStormUnderReadahead hammers Seek/Read interleavings so
// the race detector can chew on the cancellation paths, verifying
// position correctness throughout.
func TestReaderSeekStormUnderReadahead(t *testing.T) {
	f, _ := startPipelinedFS(t, 2, 0)
	ctx := context.Background()
	data := pattern('R', 6*B+17)
	writeFile(t, f, "/pipe/storm", data)

	r, err := f.Open(ctx, "/pipe/storm")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	offs := []int64{0, 3 * B, B / 2, 5 * B, 2*B + 7, 0, 4 * B, B}
	buf := make([]byte, B/3)
	for round := 0; round < 3; round++ {
		for _, off := range offs {
			if _, err := r.Seek(off, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			n, err := io.ReadFull(r, buf)
			if err != nil && err != io.ErrUnexpectedEOF {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
				t.Fatalf("read at %d mismatch", off)
			}
		}
	}
}

// TestWriteBehindErrorLatched: killing the writer's context mid-stream
// makes a background commit fail; the error must surface on a later
// Write (or Close), and every subsequent Close must keep reporting it
// instead of pretending the data landed.
func TestWriteBehindErrorLatched(t *testing.T) {
	f, _ := startPipelinedFS(t, 0, 2)
	ctx, cancel := context.WithCancel(context.Background())
	w, err := f.Create(ctx, "/pipe/err", true)
	if err != nil {
		t.Fatal(err)
	}
	block := pattern('E', B)
	if _, err := w.Write(block); err != nil {
		t.Fatal(err)
	}
	cancel()
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = w.Write(block)
	}
	if werr == nil {
		t.Fatal("background commit error never surfaced on Write")
	}
	first := w.Close()
	if first == nil {
		t.Fatal("Close after latched write-behind error returned nil")
	}
	if second := w.Close(); second == nil {
		t.Fatal("repeat Close dropped the latched error")
	} else if !errors.Is(second, first) && second.Error() != first.Error() {
		t.Fatalf("repeat Close = %v, want the latched %v", second, first)
	}
}

// TestCloseDrainsWriteBehindInOrder: an append-mode stream commits
// through a single ordered worker; Close must drain the window before
// the final partial block so the file content is exactly the stream.
func TestCloseDrainsWriteBehindInOrder(t *testing.T) {
	f, _ := startPipelinedFS(t, 0, 3)
	ctx := context.Background()
	first := pattern('1', 2*B) // aligned: native append path
	writeFile(t, f, "/pipe/order", first)

	w, err := f.Append(ctx, "/pipe/order")
	if err != nil {
		t.Fatal(err)
	}
	second := pattern('2', 5*B+99)
	for off := 0; off < len(second); off += 777 {
		end := min(off+777, len(second))
		if _, err := w.Write(second[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/pipe/order")
	want := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(got, want) {
		t.Fatalf("drained append stream mismatch: %d vs %d bytes", len(got), len(want))
	}
}

// TestWriterCloseDoesNotLatchSuccessOnError is the regression pin for
// the pre-fix bug: writer.Close set closed=true before flushing, so a
// flush failure made the SECOND Close return nil — silently reporting
// a lost tail as durable. Close must never return nil after a failed
// flush of buffered data.
func TestWriterCloseDoesNotLatchSuccessOnError(t *testing.T) {
	f, _ := startPipelinedFS(t, 0, -1) // synchronous writer: the original bug's path
	ctx, cancel := context.WithCancel(context.Background())
	w, err := f.Create(ctx, "/pipe/lost-tail", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern('T', B/2)); err != nil { // partial tail only
		t.Fatal(err)
	}
	cancel() // the final flush will fail
	if err := w.Close(); err == nil {
		t.Fatal("Close with a failing flush returned nil")
	}
	if err := w.Close(); err == nil {
		t.Fatal("repeat Close after a failed flush returned nil (tail silently lost)")
	}
}

// TestReaderClosedSemantics is the regression pin for the closed-reader
// fixes: Read after Close must return ErrReaderClosed (not the writer
// sentinel), Seek after Close must fail too, and both must match the
// shared fs.ErrClosed.
func TestReaderClosedSemantics(t *testing.T) {
	f, _ := startFS(t)
	writeFile(t, f, "/pipe/closed", pattern('c', B))
	r, err := f.Open(context.Background(), "/pipe/closed")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 10)); !errors.Is(err, fs.ErrReaderClosed) {
		t.Errorf("Read after Close = %v, want ErrReaderClosed", err)
	}
	if _, err := r.Seek(0, io.SeekStart); !errors.Is(err, fs.ErrReaderClosed) {
		t.Errorf("Seek after Close = %v, want ErrReaderClosed", err)
	}
	if _, err := r.Read(nil); !errors.Is(err, fs.ErrClosed) {
		t.Errorf("closed-reader error should match the shared fs.ErrClosed, got %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
	// The writer side still matches both its own sentinel and ErrClosed.
	w, err := f.Create(context.Background(), "/pipe/closed-w", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, fs.ErrWriterClosed) || !errors.Is(err, fs.ErrClosed) {
		t.Errorf("Write after Close = %v, want ErrWriterClosed (and ErrClosed)", err)
	}
}

// TestSyncModeMatchesPipelined pins the ablation contract byte-for-byte:
// the same stream written and read through depth-0 windows and through
// wide windows produces identical file content, and DisableCache remains
// the fully synchronous mode.
func TestSyncModeMatchesPipelined(t *testing.T) {
	data := pattern('A', 5*B+1234)
	read := func(readahead, writeBehind int) []byte {
		f, _ := startPipelinedFS(t, readahead, writeBehind)
		writeFile(t, f, "/mode/file", data)
		return readFile(t, f, "/mode/file")
	}
	syncBytes := read(-1, -1)
	pipeBytes := read(4, 4)
	if !bytes.Equal(syncBytes, data) || !bytes.Equal(pipeBytes, data) {
		t.Fatal("mode content mismatch against source")
	}
	if !bytes.Equal(syncBytes, pipeBytes) {
		t.Fatal("synchronous and pipelined modes disagree byte-for-byte")
	}
}

// TestConcurrentSeekDuringPipelinedRead pins the raced-seek contract:
// with one goroutine seeking while another reads, every successful
// Read must return ONE contiguous range of the file — never bytes from
// the pre-seek position stitched to the post-seek one, and never a
// range silently skipped. The file encodes its own offsets (every
// 8-byte word holds its file offset), so contiguity is checkable from
// the returned bytes alone.
func TestConcurrentSeekDuringPipelinedRead(t *testing.T) {
	f, _ := startPipelinedFS(t, 3, 0)
	ctx := context.Background()
	const nBlocks = 8
	data := make([]byte, nBlocks*B)
	for off := 0; off < len(data); off += 8 {
		binary.LittleEndian.PutUint64(data[off:], uint64(off))
	}
	writeFile(t, f, "/pipe/raced", data)

	r, err := f.Open(ctx, "/pipe/raced")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	done := make(chan struct{})
	go func() { // seeker: 8-aligned jumps all over the file
		defer close(done)
		offs := []int64{5 * B, 0, 3 * B, 7 * B, B, 6 * B, 2 * B, 4 * B}
		for round := 0; round < 20; round++ {
			for _, off := range offs {
				if _, err := r.Seek(off+int64(round%B/8)*8, io.SeekStart); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		for i := 8; i+8 <= n; i += 8 {
			prev := binary.LittleEndian.Uint64(buf[i-8:])
			cur := binary.LittleEndian.Uint64(buf[i:])
			if cur != prev+8 {
				t.Fatalf("Read returned a stitched range: word %d then %d", prev, cur)
			}
		}
		if err == io.EOF {
			select {
			case <-done:
				if _, err := r.Seek(0, io.SeekStart); err != nil {
					t.Fatal(err)
				}
				got, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("full re-read after seek storm mismatch")
				}
				return
			default:
				if _, err := r.Seek(0, io.SeekStart); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeekWithinWarmWindowKeepsPipeline: a forward seek that lands on
// an already-prefetched block must not throw the window away — the
// run continues on the prefetched data.
func TestSeekWithinWarmWindowKeepsPipeline(t *testing.T) {
	f, _ := startPipelinedFS(t, 3, 0)
	ctx := context.Background()
	data := pattern('W', 8*B)
	writeFile(t, f, "/pipe/warm", data)

	r, err := f.Open(ctx, "/pipe/warm")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Read into block 0 sequentially: blocks 1..3 enter the window.
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	// An intra-block skip keeps everything warm.
	if _, err := r.Seek(B/2, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if st := r.(bsfs.PipelinedReader).ReadStats(); st.Canceled != 0 {
		t.Errorf("intra-block seek canceled %d prefetches, want 0", st.Canceled)
	}
	got := make([]byte, 64)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[B/2:B/2+64]) {
		t.Fatal("intra-block seek read mismatch")
	}
}
