package bsfs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/vmanager"
)

const B = 4 * 1024

func startFS(t *testing.T) (*bsfs.FS, *cluster.BlobSeer) {
	t.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     B,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	f, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	return f, cl
}

func writeFile(t *testing.T, f fs.FileSystem, path string, data []byte) {
	t.Helper()
	w, err := f.Create(context.Background(), path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, f fs.FileSystem, path string) []byte {
	t.Helper()
	r, err := f.Open(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func pattern(tag byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = tag ^ byte(i*13)
	}
	return d
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	f, _ := startFS(t)
	data := pattern('q', 3*B+123) // multiple blocks + partial tail
	writeFile(t, f, "/data/file.bin", data)
	got := readFile(t, f, "/data/file.bin")
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
	st, err := f.Stat(context.Background(), "/data/file.bin")
	if err != nil || st.Size != int64(len(data)) || st.IsDir {
		t.Errorf("Stat = %+v, %v", st, err)
	}
}

func TestSmallWritesBuffered(t *testing.T) {
	// Hadoop writes a few KB at a time (Section IV-B); the write-behind
	// cache must coalesce them into whole-block commits.
	f, cl := startFS(t)
	ctx := context.Background()
	w, err := f.Create(ctx, "/small-writes", true)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 3*B/100+5; i++ {
		chunk := pattern(byte(i), 100)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/small-writes")
	if !bytes.Equal(got, want) {
		t.Fatal("buffered writes mismatch")
	}
	// The blob must have one version per block commit, not per Write
	// call: ceil(len/B) versions.
	id, err := cl.NSService().State().GetFile("/small-writes")
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := cl.VMService().State().Latest(id)
	wantVersions := (len(want) + B - 1) / B
	if int(v) != wantVersions {
		t.Errorf("blob has %d versions, want %d (one per block)", v, wantVersions)
	}
}

func TestSequentialSmallReadsPrefetch(t *testing.T) {
	// 4 KB-at-a-time sequential reads (the map-phase pattern) must
	// produce the full file through the block prefetch cache.
	f, _ := startFS(t)
	data := pattern('p', 2*B+777)
	writeFile(t, f, "/reads", data)
	r, err := f.Open(context.Background(), "/reads")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []byte
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("prefetched sequential read mismatch")
	}
}

func TestSeekAndRead(t *testing.T) {
	f, _ := startFS(t)
	data := pattern('s', 2*B)
	writeFile(t, f, "/seek", data)
	r, _ := f.Open(context.Background(), "/seek")
	defer r.Close()

	if pos, err := r.Seek(B-10, io.SeekStart); err != nil || pos != B-10 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	buf := make([]byte, 20)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[B-10:B+10]) {
		t.Error("read after seek mismatch")
	}
	if pos, _ := r.Seek(-5, io.SeekEnd); pos != 2*B-5 {
		t.Errorf("seek end = %d", pos)
	}
	rest, _ := io.ReadAll(r)
	if len(rest) != 5 {
		t.Errorf("tail read = %d bytes", len(rest))
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
}

func TestAppendToAlignedFile(t *testing.T) {
	f, _ := startFS(t)
	first := pattern('1', 2*B) // aligned
	writeFile(t, f, "/log", first)
	w, err := f.Append(context.Background(), "/log")
	if err != nil {
		t.Fatal(err)
	}
	second := pattern('2', B+33)
	if _, err := w.Write(second); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/log")
	if !bytes.Equal(got, append(append([]byte(nil), first...), second...)) {
		t.Fatal("append mismatch")
	}
}

func TestAppendToUnalignedFileMergesTail(t *testing.T) {
	f, _ := startFS(t)
	first := pattern('1', B+100) // unaligned tail
	writeFile(t, f, "/log2", first)
	w, err := f.Append(context.Background(), "/log2")
	if err != nil {
		t.Fatal(err)
	}
	second := pattern('2', 2*B)
	if _, err := w.Write(second); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/log2")
	want := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(got, want) {
		t.Fatalf("unaligned append mismatch: %d vs %d bytes", len(got), len(want))
	}
}

func TestConcurrentAppendersSharedFile(t *testing.T) {
	// The Figure 5 workload at file-system level: N clients appending
	// 1-block records to one shared file, all records land intact.
	f, cl := startFS(t)
	ctx := context.Background()
	writeFile(t, f, "/shared-log", nil) // empty file

	const N = 8
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			af, err := cl.NewBSFS("")
			if err != nil {
				t.Error(err)
				return
			}
			w, err := af.Append(ctx, "/shared-log")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := w.Write(bytes.Repeat([]byte{byte(i + 1)}, B)); err != nil {
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// Wait for publication of all appends.
	id, _ := cl.NSService().State().GetFile("/shared-log")
	if _, _, err := cl.VMService().State().WaitPublished(id, N, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/shared-log")
	if len(got) != N*B {
		t.Fatalf("shared log is %d bytes, want %d", len(got), N*B)
	}
	seen := map[byte]int{}
	for i := 0; i < N; i++ {
		seen[got[i*B]]++
	}
	for i := 1; i <= N; i++ {
		if seen[byte(i)] != 1 {
			t.Errorf("appender %d's record appears %d times", i, seen[byte(i)])
		}
	}
}

func TestOpenPinsSnapshot(t *testing.T) {
	f, _ := startFS(t)
	ctx := context.Background()
	v1 := pattern('a', B)
	writeFile(t, f, "/pin", v1)
	r, err := f.Open(ctx, "/pin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Overwrite AFTER open.
	w, _ := f.Create(ctx, "/pin", true)
	w.Write(pattern('b', B))
	w.Close()
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, v1) {
		t.Error("open reader saw writes made after open")
	}
}

func TestOpenVersionTimeTravel(t *testing.T) {
	f, _ := startFS(t)
	ctx := context.Background()
	writeFile(t, f, "/tt", pattern('a', B))
	// Append twice -> versions 2 and 3.
	for i := 0; i < 2; i++ {
		w, _ := f.Append(ctx, "/tt")
		w.Write(pattern(byte('b'+i), B))
		w.Close()
	}
	n, err := f.Versions(ctx, "/tt")
	if err != nil || n != 3 {
		t.Fatalf("Versions = %d, %v", n, err)
	}
	r, err := f.OpenVersion(ctx, "/tt", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _ := io.ReadAll(r)
	if !bytes.Equal(got, pattern('a', B)) {
		t.Error("version-1 read mismatch")
	}
	// Version 0 is blob.NoVersion internally; an externally supplied 0
	// must be rejected, never silently resolved to the latest snapshot.
	if _, err := f.OpenVersion(ctx, "/tt", 0); !errors.Is(err, vmanager.ErrBadVersion) {
		t.Errorf("OpenVersion(0) = %v, want ErrBadVersion", err)
	}
	if err := f.Branch(ctx, "/tt", 0, "/tt-branch", 2); !errors.Is(err, vmanager.ErrBadVersion) {
		t.Errorf("Branch(version 0) = %v, want ErrBadVersion", err)
	}
}

func TestNamespaceOperations(t *testing.T) {
	f, _ := startFS(t)
	ctx := context.Background()
	writeFile(t, f, "/a/1", pattern('x', 100))
	writeFile(t, f, "/a/2", pattern('y', 200))
	if err := f.Mkdirs(ctx, "/a/sub"); err != nil {
		t.Fatal(err)
	}
	sts, err := f.List(ctx, "/a")
	if err != nil || len(sts) != 3 {
		t.Fatalf("List = %+v, %v", sts, err)
	}
	if sts[0].Path != "/a/1" || sts[0].Size != 100 {
		t.Errorf("status = %+v", sts[0])
	}
	if err := f.Rename(ctx, "/a/1", "/b/1"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/b/1"); len(got) != 100 {
		t.Error("renamed file unreadable")
	}
	if err := f.Delete(ctx, "/a", true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open(ctx, "/a/2"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("deleted file open err = %v", err)
	}
}

func TestLocationsForScheduling(t *testing.T) {
	f, _ := startFS(t)
	ctx := context.Background()
	writeFile(t, f, "/input", pattern('L', 4*B))
	locs, err := f.Locations(ctx, "/input", 0, 4*B)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("got %d locations", len(locs))
	}
	hosts := map[string]bool{}
	for _, l := range locs {
		if len(l.Hosts) == 0 || l.Hosts[0] == "" {
			t.Fatalf("location without host: %+v", l)
		}
		hosts[l.Hosts[0]] = true
	}
	if len(hosts) != 4 { // round-robin across 4 providers
		t.Errorf("locations on %d hosts, want 4", len(hosts))
	}
}

func TestEmptyFile(t *testing.T) {
	f, _ := startFS(t)
	writeFile(t, f, "/empty", nil)
	st, err := f.Stat(context.Background(), "/empty")
	if err != nil || st.Size != 0 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	got := readFile(t, f, "/empty")
	if len(got) != 0 {
		t.Errorf("empty file read %d bytes", len(got))
	}
}

func TestManyFilesConcurrently(t *testing.T) {
	// The RandomTextWriter pattern: N writers, each its own file.
	f, cl := startFS(t)
	_ = f
	const N = 12
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wf, err := cl.NewBSFS("")
			if err != nil {
				t.Error(err)
				return
			}
			path := fmt.Sprintf("/out/part-%05d", i)
			data := pattern(byte(i), B+i*17)
			w, err := wf.Create(context.Background(), path, true)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := w.Write(data); err != nil {
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	sts, err := f.List(context.Background(), "/out")
	if err != nil || len(sts) != N {
		t.Fatalf("List = %d entries, %v", len(sts), err)
	}
	for i, st := range sts {
		if st.Size != int64(B+i*17) {
			t.Errorf("part %d size = %d", i, st.Size)
		}
	}
}
