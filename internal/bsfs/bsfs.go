// Package bsfs is the BlobSeer File System of Section IV: the layer
// that lets a Map/Reduce framework use BlobSeer as its storage backend
// through a conventional file-system API. It adds, on top of the core
// client: a hierarchical namespace (via the namespace manager), data
// prefetching and write-behind caching at block granularity (Section
// IV-B), and exposure of the physical data layout for affinity
// scheduling (Section IV-C).
package bsfs

import (
	"context"
	"fmt"
	"io"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/fs"
	"blobseer/internal/namespace"
)

// Config configures a BSFS client.
type Config struct {
	Core        *core.Client
	NS          *namespace.Client
	BlockSize   int64 // striping unit for new files (64 MB in the paper)
	Replication int
	// DisableCache turns off prefetch/write-behind (ablation benches;
	// reads and writes then hit BlobSeer at request granularity).
	DisableCache bool
}

// FS implements fs.FileSystem over BlobSeer.
type FS struct {
	cfg Config
}

var (
	_ fs.FileSystem     = (*FS)(nil)
	_ fs.SnapshotReader = (*FS)(nil)
)

// New returns a BSFS client.
func New(cfg Config) (*FS, error) {
	if cfg.Core == nil || cfg.NS == nil {
		return nil, fmt.Errorf("bsfs: core and namespace clients are required")
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("bsfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	return &FS{cfg: cfg}, nil
}

// Name implements fs.FileSystem.
func (f *FS) Name() string { return "bsfs" }

// BlockSize implements fs.FileSystem.
func (f *FS) BlockSize() int64 { return f.cfg.BlockSize }

// Create implements fs.FileSystem.
func (f *FS) Create(ctx context.Context, path string, overwrite bool) (fs.Writer, error) {
	id, err := f.cfg.NS.CreateFile(ctx, path, f.cfg.BlockSize, f.cfg.Replication, overwrite)
	if err != nil {
		return nil, err
	}
	return &writer{fs: f, ctx: ctx, blob: id, blockSize: f.cfg.BlockSize, appendMode: false}, nil
}

// Append implements fs.FileSystem. Appends to block-aligned files (the
// paper's Figure 5 workload) proceed with full write/write concurrency
// through BlobSeer's native append. An unaligned tail is merged with a
// read-modify-write on first flush, which is only safe for a single
// appender — exactly the semantics Hadoop applications expect.
func (f *FS) Append(ctx context.Context, path string) (fs.Writer, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	return &writer{fs: f, ctx: ctx, blob: id, blockSize: f.cfg.BlockSize, appendMode: true}, nil
}

// Open implements fs.FileSystem. The snapshot version is pinned at open
// time: concurrent writers never disturb this reader.
func (f *FS) Open(ctx context.Context, path string) (fs.Reader, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	v, size, err := f.cfg.Core.Latest(ctx, id)
	if err != nil {
		return nil, err
	}
	return &reader{fs: f, ctx: ctx, blob: id, version: v, size: size, blockSize: f.cfg.BlockSize}, nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	e, err := f.cfg.NS.StatEntry(ctx, path)
	if err != nil {
		return fs.FileStatus{}, err
	}
	st := fs.FileStatus{Path: fs.Clean(path), IsDir: e.IsDir}
	if !e.IsDir {
		_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
		if err != nil {
			return fs.FileStatus{}, err
		}
		st.Size = size
	}
	return st, nil
}

// List implements fs.FileSystem.
func (f *FS) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	entries, err := f.cfg.NS.List(ctx, path)
	if err != nil {
		return nil, err
	}
	dir := fs.Clean(path)
	if dir == "/" {
		dir = ""
	}
	out := make([]fs.FileStatus, 0, len(entries))
	for _, e := range entries {
		st := fs.FileStatus{Path: dir + "/" + e.Name, IsDir: e.IsDir}
		if !e.IsDir {
			_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
			if err != nil {
				return nil, err
			}
			st.Size = size
		}
		out = append(out, st)
	}
	return out, nil
}

// Mkdirs implements fs.FileSystem.
func (f *FS) Mkdirs(ctx context.Context, path string) error {
	return f.cfg.NS.Mkdirs(ctx, path)
}

// Delete implements fs.FileSystem.
func (f *FS) Delete(ctx context.Context, path string, recursive bool) error {
	_, err := f.cfg.NS.Delete(ctx, path, recursive)
	return err
}

// Rename implements fs.FileSystem.
func (f *FS) Rename(ctx context.Context, src, dst string) error {
	return f.cfg.NS.Rename(ctx, src, dst)
}

// Locations implements fs.FileSystem by mapping Hadoop's
// getFileBlockLocations onto BlobSeer's layout primitive.
func (f *FS) Locations(ctx context.Context, path string, off, length int64) ([]fs.BlockLocation, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	locs, err := f.cfg.Core.Locations(ctx, id, blob.NoVersion, off, length)
	if err != nil {
		return nil, err
	}
	out := make([]fs.BlockLocation, len(locs))
	for i, l := range locs {
		out[i] = fs.BlockLocation{Off: l.Off, Len: l.Len, Hosts: l.Hosts}
	}
	return out, nil
}

// OpenVersion opens a file pinned to an explicit snapshot version —
// the versioning capability HDFS lacks entirely (Section VI-A). It
// implements fs.SnapshotReader.
func (f *FS) OpenVersion(ctx context.Context, path string, version uint64) (fs.Reader, error) {
	v := blob.Version(version)
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	d, err := f.cfg.Core.VM().VersionInfo(ctx, id, v)
	if err != nil {
		return nil, err
	}
	return &reader{fs: f, ctx: ctx, blob: id, version: v, size: d.SizeAfter, blockSize: f.cfg.BlockSize}, nil
}

// Versions returns the published version count of a file.
func (f *FS) Versions(ctx context.Context, path string) (blob.Version, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return 0, err
	}
	v, _, err := f.cfg.Core.Latest(ctx, id)
	return v, err
}

// reader implements fs.Reader with whole-block prefetching: when the
// requested data is not cached, the full enclosing block is fetched
// (Section IV-B), so a Hadoop-style sequence of 4 KB reads costs one
// block transfer.
type reader struct {
	fs        *FS
	ctx       context.Context
	blob      blob.ID
	version   blob.Version
	size      int64
	blockSize int64

	mu       sync.Mutex
	pos      int64
	cacheOff int64 // file offset of cached block (-1 = empty)
	cache    []byte
	closed   bool
}

// Read implements io.Reader.
func (r *reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fs.ErrWriterClosed
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if r.pos+want > r.size {
		want = r.size - r.pos
	}
	n := 0
	for want > 0 {
		data, err := r.lockedFetch(r.pos)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		c := copy(p[n:int64(n)+want], data)
		n += c
		r.pos += int64(c)
		want -= int64(c)
		if c == 0 {
			break
		}
	}
	return n, nil
}

// lockedFetch returns cached bytes at file offset off, loading the
// enclosing block if needed.
func (r *reader) lockedFetch(off int64) ([]byte, error) {
	blockStart := off / r.blockSize * r.blockSize
	if r.cache == nil || r.cacheOff != blockStart || off-blockStart >= int64(len(r.cache)) {
		length := r.blockSize
		if blockStart+length > r.size {
			length = r.size - blockStart
		}
		var (
			data []byte
			err  error
		)
		if r.fs.cfg.DisableCache {
			// Ablation mode: fetch only what was asked (here: to block
			// end, since callers of lockedFetch consume incrementally;
			// the distinction matters for the simulator, which models
			// per-request costs).
			data, err = r.fs.cfg.Core.Read(r.ctx, r.blob, r.version, off, blockStart+length-off)
			if err != nil {
				return nil, err
			}
			return data, nil
		}
		data, err = r.fs.cfg.Core.Read(r.ctx, r.blob, r.version, blockStart, length)
		if err != nil {
			return nil, err
		}
		r.cache = data
		r.cacheOff = blockStart
	}
	return r.cache[off-r.cacheOff:], nil
}

// Seek implements io.Seeker.
func (r *reader) Seek(offset int64, whence int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("bsfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("bsfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// Close implements io.Closer.
func (r *reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cache = nil
	return nil
}

// Size returns the pinned snapshot size.
func (r *reader) Size() int64 { return r.size }

// writer implements fs.Writer with write-behind buffering: data is
// committed to BlobSeer one full block at a time; the final partial
// block is committed at Close (Section IV-B).
type writer struct {
	fs         *FS
	ctx        context.Context
	blob       blob.ID
	blockSize  int64
	appendMode bool

	mu         sync.Mutex
	started    bool
	offsetMode bool  // create mode, or append after an unaligned-tail merge
	written    int64 // offset mode: file offset of the next flush
	buf        []byte
	closed     bool
}

// Write implements io.Writer.
func (w *writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fs.ErrWriterClosed
	}
	total := 0
	for len(p) > 0 {
		room := int(w.blockSize) - len(w.buf)
		if room <= 0 {
			if err := w.lockedFlush(false); err != nil {
				return total, err
			}
			room = int(w.blockSize) - len(w.buf)
		}
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
	}
	// Eagerly flush full blocks so long streams commit as they go.
	if int64(len(w.buf)) >= w.blockSize {
		if err := w.lockedFlush(false); err != nil {
			return total, err
		}
	}
	return total, nil
}

// lockedFlush commits buffered data as BlobSeer operations. Unless
// final, it only commits whole blocks so every flush offset stays
// block-aligned (the remainder stays buffered for the next round).
func (w *writer) lockedFlush(final bool) error {
	if len(w.buf) == 0 {
		return nil
	}
	if !w.started {
		w.started = true
		if w.appendMode {
			// An unaligned tail cannot go through core appends (the
			// version manager rejects appends onto unaligned EOFs), so
			// merge it once and continue with offset-tracked writes.
			// This path is single-appender, like Hadoop's append; the
			// aligned path below keeps full append/append concurrency.
			_, size, err := w.fs.cfg.Core.Latest(w.ctx, w.blob)
			if err != nil {
				return err
			}
			if rem := size % w.blockSize; rem != 0 {
				tailStart := size - rem
				tail, err := w.fs.cfg.Core.Read(w.ctx, w.blob, blob.NoVersion, tailStart, rem)
				if err != nil {
					return err
				}
				w.buf = append(tail, w.buf...)
				w.offsetMode = true
				w.written = tailStart
			}
		} else {
			w.offsetMode = true
		}
	}
	data := w.buf
	if final {
		w.buf = nil
	} else {
		keep := int64(len(data)) % w.blockSize
		flushLen := int64(len(data)) - keep
		if flushLen == 0 {
			return nil // no whole block buffered yet
		}
		w.buf = append([]byte(nil), data[flushLen:]...)
		data = data[:flushLen]
	}
	if !w.offsetMode {
		// Block-aligned append: fully concurrent with other appenders,
		// the version manager fixes the offset (Figure 5's workload).
		_, err := w.fs.cfg.Core.Append(w.ctx, w.blob, data)
		return err
	}
	off := w.written
	w.written += int64(len(data))
	_, err := w.fs.cfg.Core.Write(w.ctx, w.blob, off, data)
	return err
}

// Close flushes the final (possibly partial) block.
func (w *writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.lockedFlush(true)
}

// Prune discards every snapshot of path below version keep and
// reclaims the storage kept versions cannot reach (Section III-A1's
// version garbaging). Open readers pinned to kept versions are
// unaffected; readers below keep lose their snapshot.
func (f *FS) Prune(ctx context.Context, path string, keep blob.Version) (core.GCStats, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return core.GCStats{}, err
	}
	return f.cfg.Core.GC(ctx, id, keep)
}
