// Package bsfs is the BlobSeer File System of Section IV: the layer
// that lets a Map/Reduce framework use BlobSeer as its storage backend
// through a conventional file-system API. It adds, on top of the core
// client: a hierarchical namespace (via the namespace manager), data
// prefetching and write-behind caching at block granularity (Section
// IV-B), and exposure of the physical data layout for affinity
// scheduling (Section IV-C).
package bsfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/fs"
	"blobseer/internal/namespace"
)

// Default streaming-pipeline windows (Section IV-B): how far a
// sequential reader fetches ahead of the stream position, and how many
// full-block commits a writer keeps in flight while the application
// keeps writing. cluster.Config applies these when its knobs are zero.
const (
	DefaultReadaheadBlocks  = 2
	DefaultWriteBehindDepth = 2
)

// Config configures a BSFS client.
type Config struct {
	Core        *core.Client
	NS          *namespace.Client
	BlockSize   int64 // striping unit for new files (64 MB in the paper)
	Replication int
	// ReadaheadBlocks is the reader's asynchronous prefetch window: up
	// to this many blocks are fetched by background goroutines ahead of
	// a sequential stream. 0 (or negative) keeps reads fully
	// synchronous — one block fetched at a time, on demand.
	ReadaheadBlocks int
	// WriteBehindDepth is the writer's write-behind window: up to this
	// many full-block commits proceed in the background while Write
	// keeps buffering. 0 (or negative) keeps writes fully synchronous —
	// each block commit completes before Write returns.
	WriteBehindDepth int
	// DisableCache turns off block caching, prefetch and write-behind
	// entirely (ablation benches; reads and writes then hit BlobSeer at
	// request granularity).
	DisableCache bool
}

// FS implements fs.FileSystem over BlobSeer.
type FS struct {
	cfg Config
}

var (
	_ fs.FileSystem     = (*FS)(nil)
	_ fs.SnapshotReader = (*FS)(nil)
)

// New returns a BSFS client.
func New(cfg Config) (*FS, error) {
	if cfg.Core == nil || cfg.NS == nil {
		return nil, fmt.Errorf("bsfs: core and namespace clients are required")
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("bsfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.ReadaheadBlocks < 0 || cfg.DisableCache {
		cfg.ReadaheadBlocks = 0
	}
	if cfg.WriteBehindDepth < 0 || cfg.DisableCache {
		cfg.WriteBehindDepth = 0
	}
	return &FS{cfg: cfg}, nil
}

// Name implements fs.FileSystem.
func (f *FS) Name() string { return "bsfs" }

// BlockSize implements fs.FileSystem.
func (f *FS) BlockSize() int64 { return f.cfg.BlockSize }

// Create implements fs.FileSystem.
func (f *FS) Create(ctx context.Context, path string, overwrite bool) (fs.Writer, error) {
	id, err := f.cfg.NS.CreateFile(ctx, path, f.cfg.BlockSize, f.cfg.Replication, overwrite)
	if err != nil {
		return nil, err
	}
	return f.newWriter(ctx, id, false), nil
}

// Append implements fs.FileSystem. Appends to block-aligned files (the
// paper's Figure 5 workload) proceed with full write/write concurrency
// through BlobSeer's native append. An unaligned tail is merged with a
// read-modify-write on first flush, which is only safe for a single
// appender — exactly the semantics Hadoop applications expect.
func (f *FS) Append(ctx context.Context, path string) (fs.Writer, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	return f.newWriter(ctx, id, true), nil
}

// Open implements fs.FileSystem. The snapshot version is pinned at open
// time: concurrent writers never disturb this reader.
func (f *FS) Open(ctx context.Context, path string) (fs.Reader, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	v, size, err := f.cfg.Core.Latest(ctx, id)
	if err != nil {
		return nil, err
	}
	return f.newReader(ctx, id, v, size), nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	e, err := f.cfg.NS.StatEntry(ctx, path)
	if err != nil {
		return fs.FileStatus{}, err
	}
	st := fs.FileStatus{Path: fs.Clean(path), IsDir: e.IsDir}
	if !e.IsDir {
		_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
		if err != nil {
			return fs.FileStatus{}, err
		}
		st.Size = size
	}
	return st, nil
}

// List implements fs.FileSystem.
func (f *FS) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	entries, err := f.cfg.NS.List(ctx, path)
	if err != nil {
		return nil, err
	}
	dir := fs.Clean(path)
	if dir == "/" {
		dir = ""
	}
	out := make([]fs.FileStatus, 0, len(entries))
	for _, e := range entries {
		st := fs.FileStatus{Path: dir + "/" + e.Name, IsDir: e.IsDir}
		if !e.IsDir {
			_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
			if err != nil {
				return nil, err
			}
			st.Size = size
		}
		out = append(out, st)
	}
	return out, nil
}

// Mkdirs implements fs.FileSystem.
func (f *FS) Mkdirs(ctx context.Context, path string) error {
	return f.cfg.NS.Mkdirs(ctx, path)
}

// Delete implements fs.FileSystem.
func (f *FS) Delete(ctx context.Context, path string, recursive bool) error {
	_, err := f.cfg.NS.Delete(ctx, path, recursive)
	return err
}

// Rename implements fs.FileSystem.
func (f *FS) Rename(ctx context.Context, src, dst string) error {
	return f.cfg.NS.Rename(ctx, src, dst)
}

// Locations implements fs.FileSystem by mapping Hadoop's
// getFileBlockLocations onto BlobSeer's layout primitive.
func (f *FS) Locations(ctx context.Context, path string, off, length int64) ([]fs.BlockLocation, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	locs, err := f.cfg.Core.Locations(ctx, id, blob.NoVersion, off, length)
	if err != nil {
		return nil, err
	}
	out := make([]fs.BlockLocation, len(locs))
	for i, l := range locs {
		out[i] = fs.BlockLocation{Off: l.Off, Len: l.Len, Hosts: l.Hosts}
	}
	return out, nil
}

// OpenVersion opens a file pinned to an explicit snapshot version —
// the versioning capability HDFS lacks entirely (Section VI-A). It
// implements fs.SnapshotReader.
func (f *FS) OpenVersion(ctx context.Context, path string, version uint64) (fs.Reader, error) {
	v := blob.Version(version)
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	d, err := f.cfg.Core.VM().VersionInfo(ctx, id, v)
	if err != nil {
		return nil, err
	}
	return f.newReader(ctx, id, v, d.SizeAfter), nil
}

// Versions returns the published version count of a file.
func (f *FS) Versions(ctx context.Context, path string) (blob.Version, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return 0, err
	}
	v, _, err := f.cfg.Core.Latest(ctx, id)
	return v, err
}

// ReadStats counts the reader-side pipeline activity (tests, tuning).
type ReadStats struct {
	Prefetched   int // background block fetches started ahead of pos
	PrefetchHits int // blocks consumed out of the readahead window
	Canceled     int // window entries dropped unconsumed by Seek/Close
}

// PipelinedReader is implemented by BSFS readers; callers can
// type-assert an fs.Reader to observe the readahead pipeline.
type PipelinedReader interface {
	ReadStats() ReadStats
}

// reader implements fs.Reader with whole-block prefetching: when the
// requested data is not cached, the full enclosing block is fetched
// (Section IV-B), so a Hadoop-style sequence of 4 KB reads costs one
// block transfer. With ReadaheadBlocks > 0 the reader also detects
// sequential access and keeps a bounded window of blocks in flight
// ahead of the stream position, fetched by background goroutines, so
// consuming block i overlaps the transfer of blocks i+1..i+N.
type reader struct {
	fs        *FS
	ctx       context.Context
	blob      blob.ID
	version   blob.Version
	size      int64
	blockSize int64
	readahead int

	mu       sync.Mutex
	pos      int64
	cacheOff int64 // file offset of cached block (-1 = empty)
	cache    []byte
	closed   bool

	nextSeq int64            // block start that would continue the sequential run (-1 = none)
	window  map[int64]*fetch // block start -> in-flight or completed background fetch
	stats   ReadStats
}

// fetch is one asynchronous block fetch.
type fetch struct {
	done   chan struct{}
	cancel context.CancelFunc
	data   []byte
	err    error
}

func (f *FS) newReader(ctx context.Context, id blob.ID, v blob.Version, size int64) *reader {
	return &reader{
		fs:        f,
		ctx:       ctx,
		blob:      id,
		version:   v,
		size:      size,
		blockSize: f.cfg.BlockSize,
		readahead: f.cfg.ReadaheadBlocks,
		cacheOff:  -1,
		nextSeq:   -1,
		window:    make(map[int64]*fetch),
	}
}

// errSeekRaced reports that a concurrent Seek moved the stream while a
// pipelined fetch was waited on (the lock is released during the
// wait); the read loop resumes from the new position.
var errSeekRaced = errors.New("bsfs: seek raced a block fetch")

// Read implements io.Reader.
func (r *reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fs.ErrReaderClosed
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.pos < r.size {
		data, err := r.lockedFetch(r.pos)
		if errors.Is(err, errSeekRaced) {
			// A concurrent Seek moved the stream. Bytes already copied
			// stay a single contiguous range (return them); otherwise
			// resume from the position the Seek set.
			if n > 0 {
				return n, nil
			}
			continue
		}
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		want := min(int64(len(p)-n), r.size-r.pos)
		c := copy(p[n:int64(n)+want], data)
		n += c
		r.pos += int64(c)
		if c == 0 {
			break
		}
	}
	if n == 0 && r.pos >= r.size {
		return 0, io.EOF // a racing Seek pushed the stream to EOF
	}
	return n, nil
}

// lockedFetch returns cached bytes at file offset off, loading the
// enclosing block if needed.
func (r *reader) lockedFetch(off int64) ([]byte, error) {
	blockStart := off / r.blockSize * r.blockSize
	if r.cache == nil || r.cacheOff != blockStart || off-blockStart >= int64(len(r.cache)) {
		length := r.blockSize
		if blockStart+length > r.size {
			length = r.size - blockStart
		}
		if r.fs.cfg.DisableCache {
			// Ablation mode: fetch only what was asked (here: to block
			// end, since callers of lockedFetch consume incrementally;
			// the distinction matters for the simulator, which models
			// per-request costs).
			return r.fs.cfg.Core.Read(r.ctx, r.blob, r.version, off, blockStart+length-off)
		}
		if r.readahead > 0 {
			if err := r.lockedLoadPipelined(off, blockStart, length); err != nil {
				return nil, err
			}
		} else {
			data, err := r.fs.cfg.Core.Read(r.ctx, r.blob, r.version, blockStart, length)
			if err != nil {
				return nil, err
			}
			r.cache = data
			r.cacheOff = blockStart
		}
	}
	return r.cache[off-r.cacheOff:], nil
}

// lockedLoadPipelined installs the block at blockStart into the cache
// through the readahead window: it consumes a background fetch if one
// is in flight (or starts one), launches the next window of prefetches
// when the access pattern is sequential, and waits with the lock
// released so Seek/Close stay responsive. off is the stream position
// the caller is serving; if a concurrent Seek moves r.pos off it while
// the lock is down, errSeekRaced tells the read loop to resume from
// the new position instead of mis-pairing old bytes with the new one.
func (r *reader) lockedLoadPipelined(off, blockStart, length int64) error {
	f, hit := r.window[blockStart]
	if !hit {
		f = r.startFetch(blockStart, length)
		r.window[blockStart] = f
	} else {
		r.stats.PrefetchHits++
	}

	// Sequential-access detection: the run continues (or starts at the
	// beginning of the file). Top the window back up before blocking on
	// the current block so the pipeline never drains.
	if blockStart == 0 || blockStart == r.nextSeq {
		for next := blockStart + r.blockSize; next < r.size && next <= blockStart+int64(r.readahead)*r.blockSize; next += r.blockSize {
			if _, ok := r.window[next]; ok {
				continue
			}
			ln := min(r.blockSize, r.size-next)
			r.window[next] = r.startFetch(next, ln)
			r.stats.Prefetched++
		}
	}
	r.nextSeq = blockStart + r.blockSize

	// Blocks behind the stream position are dead weight: cancel them.
	r.lockedPruneBehind(blockStart)

	for attempt := 0; ; attempt++ {
		r.mu.Unlock()
		<-f.done
		r.mu.Lock()
		if r.closed {
			return fs.ErrReaderClosed
		}
		if r.window[blockStart] == f {
			delete(r.window, blockStart)
		}
		if f.err == nil {
			r.cache = f.data
			r.cacheOff = blockStart
			if r.pos != off {
				return errSeekRaced // block kept cached; serve the new pos
			}
			return nil
		}
		if r.pos != off {
			return errSeekRaced
		}
		// A prefetch canceled by a concurrent Seek (whose target then
		// turned out to need this block after all) is not a stream
		// error: retry once in the foreground.
		if attempt > 0 || !errors.Is(f.err, context.Canceled) || r.ctx.Err() != nil {
			return f.err
		}
		f = r.startFetch(blockStart, length)
		r.window[blockStart] = f
	}
}

// startFetch launches a background fetch of [blockStart,
// blockStart+length) with its own cancelable context.
func (r *reader) startFetch(blockStart, length int64) *fetch {
	fctx, cancel := context.WithCancel(r.ctx)
	f := &fetch{done: make(chan struct{}), cancel: cancel}
	go func() {
		defer close(f.done)
		f.data, f.err = r.fs.cfg.Core.Read(fctx, r.blob, r.version, blockStart, length)
		cancel()
	}()
	return f
}

// lockedCancelWindow aborts every outstanding background fetch.
func (r *reader) lockedCancelWindow() {
	for start, f := range r.window {
		f.cancel()
		delete(r.window, start)
		r.stats.Canceled++
	}
	r.nextSeq = -1
}

// lockedPruneBehind aborts window fetches strictly behind blockStart,
// keeping the warm entries ahead of it.
func (r *reader) lockedPruneBehind(blockStart int64) {
	for start, f := range r.window {
		if start < blockStart {
			f.cancel()
			delete(r.window, start)
			r.stats.Canceled++
		}
	}
}

// Seek implements io.Seeker. Seeking away from the run cancels the
// readahead window: prefetches issued for the abandoned run are
// aborted rather than left to fetch blocks the stream no longer
// wants. A seek whose target is still in hand — inside the cached
// block or a prefetched window entry — keeps the warm pipeline and
// only drops entries the stream has passed.
func (r *reader) Seek(offset int64, whence int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fs.ErrReaderClosed
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("bsfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("bsfs: negative seek position %d", abs)
	}
	if abs != r.pos {
		newBlock := abs / r.blockSize * r.blockSize
		switch {
		case r.cache != nil && r.cacheOff == newBlock:
			r.lockedPruneBehind(newBlock)
		case r.window[newBlock] != nil:
			r.lockedPruneBehind(newBlock)
			r.nextSeq = newBlock // the run continues on the prefetched block
		default:
			r.lockedCancelWindow()
		}
	}
	r.pos = abs
	return abs, nil
}

// Close implements io.Closer.
func (r *reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lockedCancelWindow()
	r.closed = true
	r.cache = nil
	return nil
}

// Size returns the pinned snapshot size.
func (r *reader) Size() int64 { return r.size }

// ReadStats implements PipelinedReader.
func (r *reader) ReadStats() ReadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// writer implements fs.Writer with write-behind buffering: data is
// committed to BlobSeer one full block at a time; the final partial
// block is committed at Close (Section IV-B). With WriteBehindDepth >
// 0 full-block commits run on a bounded background worker pool while
// Write keeps buffering; commit errors are latched and surfaced on the
// next Write or Close, and Close drains the window before committing
// the final partial block.
type writer struct {
	fs         *FS
	ctx        context.Context
	blob       blob.ID
	blockSize  int64
	appendMode bool
	depth      int

	mu         sync.Mutex
	started    bool
	offsetMode bool  // create mode, or append after an unaligned-tail merge
	written    int64 // offset mode: file offset of the next flush
	buf        []byte
	closed     bool
	closeErr   error

	// Write-behind state (depth > 0). Workers never take mu, so
	// holding it across a blocking enqueue cannot deadlock.
	queue chan wbBlock
	wg    sync.WaitGroup

	errMu sync.Mutex
	werr  error // first background commit error, latched
}

// wbBlock is one full block handed to the write-behind pool. off < 0
// marks a block-aligned append (offset fixed by the version manager).
type wbBlock struct {
	off  int64
	data []byte
}

func (f *FS) newWriter(ctx context.Context, id blob.ID, appendMode bool) *writer {
	return &writer{
		fs:         f,
		ctx:        ctx,
		blob:       id,
		blockSize:  f.cfg.BlockSize,
		appendMode: appendMode,
		depth:      f.cfg.WriteBehindDepth,
	}
}

// asyncErr returns the latched background commit error, if any.
func (w *writer) asyncErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.werr
}

func (w *writer) setAsyncErr(err error) {
	w.errMu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.errMu.Unlock()
}

// Write implements io.Writer.
func (w *writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		if w.closeErr != nil {
			return 0, w.closeErr
		}
		return 0, fs.ErrWriterClosed
	}
	if err := w.asyncErr(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		room := int(w.blockSize) - len(w.buf)
		if room <= 0 {
			if err := w.lockedFlush(false); err != nil {
				return total, err
			}
			room = int(w.blockSize) - len(w.buf)
		}
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
	}
	// Eagerly flush full blocks so long streams commit as they go.
	if int64(len(w.buf)) >= w.blockSize {
		if err := w.lockedFlush(false); err != nil {
			return total, err
		}
	}
	return total, nil
}

// lockedStart resolves the write mode on first flush: create-mode
// streams and merged unaligned-tail appends track offsets themselves;
// block-aligned appends go through BlobSeer's native append.
func (w *writer) lockedStart() error {
	if w.started {
		return nil
	}
	if w.appendMode {
		// An unaligned tail cannot go through core appends (the
		// version manager rejects appends onto unaligned EOFs), so
		// merge it once and continue with offset-tracked writes.
		// This path is single-appender, like Hadoop's append; the
		// aligned path keeps full append/append concurrency.
		_, size, err := w.fs.cfg.Core.Latest(w.ctx, w.blob)
		if err != nil {
			return err
		}
		if rem := size % w.blockSize; rem != 0 {
			tailStart := size - rem
			tail, err := w.fs.cfg.Core.Read(w.ctx, w.blob, blob.NoVersion, tailStart, rem)
			if err != nil {
				return err
			}
			w.buf = append(tail, w.buf...)
			w.offsetMode = true
			w.written = tailStart
		}
	} else {
		w.offsetMode = true
	}
	w.started = true
	return nil
}

// lockedFlush commits buffered data as BlobSeer operations. Unless
// final, it only commits whole blocks so every flush offset stays
// block-aligned (the remainder stays buffered for the next round).
// With write-behind enabled, non-final flushes enqueue whole blocks to
// the background pool instead of committing inline. On error the
// buffered data is restored, so a transient failure loses nothing.
func (w *writer) lockedFlush(final bool) error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.lockedStart(); err != nil {
		return err
	}
	if w.depth > 0 && !final {
		return w.lockedEnqueueFull()
	}
	data := w.buf
	if final {
		w.buf = nil
	} else {
		keep := int64(len(data)) % w.blockSize
		flushLen := int64(len(data)) - keep
		if flushLen == 0 {
			return nil // no whole block buffered yet
		}
		w.buf = append([]byte(nil), data[flushLen:]...)
		data = data[:flushLen]
	}
	if !w.offsetMode {
		// Block-aligned append: fully concurrent with other appenders,
		// the version manager fixes the offset (Figure 5's workload).
		if _, err := w.fs.cfg.Core.Append(w.ctx, w.blob, data); err != nil {
			w.buf = append(data, w.buf...)
			return err
		}
		return nil
	}
	off := w.written
	w.written += int64(len(data))
	if _, err := w.fs.cfg.Core.Write(w.ctx, w.blob, off, data); err != nil {
		w.buf = append(data, w.buf...)
		w.written = off
		return err
	}
	return nil
}

// lockedEnqueueFull hands every whole buffered block to the
// write-behind pool, blocking while the window is full.
func (w *writer) lockedEnqueueFull() error {
	for int64(len(w.buf)) >= w.blockSize {
		if err := w.asyncErr(); err != nil {
			return err
		}
		data := w.buf
		block := data[:w.blockSize:w.blockSize]
		w.buf = append([]byte(nil), data[w.blockSize:]...)
		blk := wbBlock{off: -1, data: block}
		if w.offsetMode {
			blk.off = w.written
			w.written += w.blockSize
		}
		w.lockedEnsureWorkers()
		w.queue <- blk
	}
	return nil
}

// lockedEnsureWorkers starts the commit pool on first use. Offset-mode
// streams commit up to depth blocks concurrently (each block's offset
// is fixed at enqueue time, so completion order is irrelevant —
// exactly the write/write concurrency BlobSeer is built for). Appends
// use a single worker: the version manager assigns offsets in arrival
// order, so in-flight appends from one stream must stay ordered.
func (w *writer) lockedEnsureWorkers() {
	if w.queue != nil {
		return
	}
	w.queue = make(chan wbBlock, w.depth)
	workers := 1
	if w.offsetMode {
		workers = w.depth
	}
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go w.commitLoop()
	}
}

// commitLoop drains the write-behind queue. After the first error the
// remaining blocks are discarded (the stream is broken anyway) so the
// producer never blocks on a dead pipeline.
func (w *writer) commitLoop() {
	defer w.wg.Done()
	for blk := range w.queue {
		if w.asyncErr() != nil {
			continue
		}
		var err error
		if blk.off >= 0 {
			_, err = w.fs.cfg.Core.Write(w.ctx, w.blob, blk.off, blk.data)
		} else {
			_, err = w.fs.cfg.Core.Append(w.ctx, w.blob, blk.data)
		}
		if err != nil {
			w.setAsyncErr(err)
		}
	}
}

// Close drains the write-behind window, then commits the final
// (possibly partial) block. A failed Close does not latch the writer
// closed-with-success: retrying is allowed (the unflushed tail is
// preserved), and once a background commit error is latched every
// further Close reports it instead of pretending the data is safe.
func (w *writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.closeErr
	}
	if w.queue != nil {
		close(w.queue)
		w.wg.Wait()
		w.queue = nil
	}
	if err := w.asyncErr(); err != nil {
		w.closed = true
		w.closeErr = err
		return err
	}
	if err := w.lockedFlush(true); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// Prune discards every snapshot of path below version keep and
// reclaims the storage kept versions cannot reach (Section III-A1's
// version garbaging). Open readers pinned to kept versions are
// unaffected; readers below keep lose their snapshot.
func (f *FS) Prune(ctx context.Context, path string, keep blob.Version) (core.GCStats, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return core.GCStats{}, err
	}
	return f.cfg.Core.GC(ctx, id, keep)
}
