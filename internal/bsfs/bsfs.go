// Package bsfs is the BlobSeer File System of Section IV: the layer
// that lets a Map/Reduce framework use BlobSeer as its storage backend
// through a conventional file-system API. It adds, on top of the core
// client: a hierarchical namespace (via the namespace manager), data
// prefetching and write-behind caching at block granularity (Section
// IV-B), and exposure of the physical data layout for affinity
// scheduling (Section IV-C).
//
// BSFS readers and writers are thin adapters: a file open resolves the
// path to a BLOB handle (core.Blob), pins a snapshot (core.Snapshot),
// and streams through the shared pipeline engine of internal/stream —
// the same engine raw-blob applications get from Snapshot.NewReader
// and Blob.NewWriter.
package bsfs

import (
	"context"
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/fs"
	"blobseer/internal/namespace"
	"blobseer/internal/stream"
	"blobseer/internal/vmanager"
)

// Default streaming-pipeline windows (Section IV-B): how far a
// sequential reader fetches ahead of the stream position, and how many
// full-block commits a writer keeps in flight while the application
// keeps writing. cluster.Config applies these when its knobs are zero.
const (
	DefaultReadaheadBlocks  = 2
	DefaultWriteBehindDepth = 2
)

// Config configures a BSFS client.
type Config struct {
	Core        *core.Client
	NS          *namespace.Client
	BlockSize   int64 // striping unit for new files (64 MB in the paper)
	Replication int
	// ReadaheadBlocks is the reader's asynchronous prefetch window: up
	// to this many blocks are fetched by background goroutines ahead of
	// a sequential stream. 0 (or negative) keeps reads fully
	// synchronous — one block fetched at a time, on demand.
	ReadaheadBlocks int
	// WriteBehindDepth is the writer's write-behind window: up to this
	// many full-block commits proceed in the background while Write
	// keeps buffering. 0 (or negative) keeps writes fully synchronous —
	// each block commit completes before Write returns.
	WriteBehindDepth int
	// DisableCache turns off block caching, prefetch and write-behind
	// entirely (ablation benches; reads and writes then hit BlobSeer at
	// request granularity).
	DisableCache bool
}

// FS implements fs.FileSystem over BlobSeer.
type FS struct {
	cfg Config
}

var (
	_ fs.FileSystem     = (*FS)(nil)
	_ fs.SnapshotReader = (*FS)(nil)
)

// ReadStats counts the reader-side pipeline activity (tests, tuning).
// It is the shared engine's stat block; the alias keeps the historical
// bsfs-level name working.
type ReadStats = stream.ReadStats

// PipelinedReader is implemented by BSFS readers; callers can
// type-assert an fs.Reader to observe the readahead pipeline.
type PipelinedReader = stream.PipelinedReader

// New returns a BSFS client.
func New(cfg Config) (*FS, error) {
	if cfg.Core == nil || cfg.NS == nil {
		return nil, fmt.Errorf("bsfs: core and namespace clients are required")
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("bsfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.ReadaheadBlocks < 0 || cfg.DisableCache {
		cfg.ReadaheadBlocks = 0
	}
	if cfg.WriteBehindDepth < 0 || cfg.DisableCache {
		cfg.WriteBehindDepth = 0
	}
	return &FS{cfg: cfg}, nil
}

// Name implements fs.FileSystem.
func (f *FS) Name() string { return "bsfs" }

// BlockSize implements fs.FileSystem.
func (f *FS) BlockSize() int64 { return f.cfg.BlockSize }

// OpenBlob resolves a file path to its BLOB handle — the escape hatch
// from the file-system API down to the versioned BLOB layer. Through
// the handle an application pins snapshots (Blob.Snapshot), reads with
// zero-copy random access (Snapshot.ReadAt) and writes concurrently at
// fixed offsets (Blob.Write) — capabilities the flat fs.FileSystem
// surface cannot express.
func (f *FS) OpenBlob(ctx context.Context, path string) (*core.Blob, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return nil, err
	}
	return f.cfg.Core.OpenBlob(ctx, id)
}

// Create implements fs.FileSystem.
func (f *FS) Create(ctx context.Context, path string, overwrite bool) (fs.Writer, error) {
	id, err := f.cfg.NS.CreateFile(ctx, path, f.cfg.BlockSize, f.cfg.Replication, overwrite)
	if err != nil {
		return nil, err
	}
	b, err := f.cfg.Core.OpenBlob(ctx, id)
	if err != nil {
		return nil, err
	}
	return b.NewWriter(ctx, core.WriterOptions{Depth: f.cfg.WriteBehindDepth}), nil
}

// Append implements fs.FileSystem. Appends to block-aligned files (the
// paper's Figure 5 workload) proceed with full write/write concurrency
// through BlobSeer's native append. An unaligned tail is merged with a
// read-modify-write on first flush, which is only safe for a single
// appender — exactly the semantics Hadoop applications expect.
func (f *FS) Append(ctx context.Context, path string) (fs.Writer, error) {
	b, err := f.OpenBlob(ctx, path)
	if err != nil {
		return nil, err
	}
	return b.NewWriter(ctx, core.WriterOptions{Append: true, Depth: f.cfg.WriteBehindDepth}), nil
}

// Open implements fs.FileSystem. The snapshot version is pinned at open
// time: concurrent writers never disturb this reader.
func (f *FS) Open(ctx context.Context, path string) (fs.Reader, error) {
	b, err := f.OpenBlob(ctx, path)
	if err != nil {
		return nil, err
	}
	s, err := b.Latest(ctx)
	if err != nil {
		return nil, err
	}
	return f.newReader(ctx, s), nil
}

// OpenVersion opens a file pinned to an explicit snapshot version —
// the versioning capability HDFS lacks entirely (Section VI-A). It
// implements fs.SnapshotReader. Version numbers are external input
// here: 0 (blob.NoVersion, which Blob.Snapshot would resolve to "the
// latest") is rejected rather than silently un-pinned.
func (f *FS) OpenVersion(ctx context.Context, path string, version uint64) (fs.Reader, error) {
	if blob.Version(version) == blob.NoVersion {
		return nil, fmt.Errorf("bsfs: %w: 0 (published versions start at 1)", vmanager.ErrBadVersion)
	}
	b, err := f.OpenBlob(ctx, path)
	if err != nil {
		return nil, err
	}
	s, err := b.Snapshot(ctx, blob.Version(version))
	if err != nil {
		return nil, err
	}
	return f.newReader(ctx, s), nil
}

// newReader streams a pinned snapshot through the shared engine with
// this FS's pipeline tuning.
func (f *FS) newReader(ctx context.Context, s *core.Snapshot) *stream.Reader {
	return s.NewReader(ctx, core.ReaderOptions{
		Readahead: f.cfg.ReadaheadBlocks,
		NoCache:   f.cfg.DisableCache,
	})
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	e, err := f.cfg.NS.StatEntry(ctx, path)
	if err != nil {
		return fs.FileStatus{}, err
	}
	st := fs.FileStatus{Path: fs.Clean(path), IsDir: e.IsDir}
	if !e.IsDir {
		_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
		if err != nil {
			return fs.FileStatus{}, err
		}
		st.Size = size
	}
	return st, nil
}

// List implements fs.FileSystem.
func (f *FS) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	entries, err := f.cfg.NS.List(ctx, path)
	if err != nil {
		return nil, err
	}
	dir := fs.Clean(path)
	if dir == "/" {
		dir = ""
	}
	out := make([]fs.FileStatus, 0, len(entries))
	for _, e := range entries {
		st := fs.FileStatus{Path: dir + "/" + e.Name, IsDir: e.IsDir}
		if !e.IsDir {
			_, size, err := f.cfg.Core.Latest(ctx, e.Blob)
			if err != nil {
				return nil, err
			}
			st.Size = size
		}
		out = append(out, st)
	}
	return out, nil
}

// Mkdirs implements fs.FileSystem.
func (f *FS) Mkdirs(ctx context.Context, path string) error {
	return f.cfg.NS.Mkdirs(ctx, path)
}

// Delete implements fs.FileSystem.
func (f *FS) Delete(ctx context.Context, path string, recursive bool) error {
	_, err := f.cfg.NS.Delete(ctx, path, recursive)
	return err
}

// Rename implements fs.FileSystem.
func (f *FS) Rename(ctx context.Context, src, dst string) error {
	return f.cfg.NS.Rename(ctx, src, dst)
}

// Locations implements fs.FileSystem by mapping Hadoop's
// getFileBlockLocations onto BlobSeer's layout primitive.
func (f *FS) Locations(ctx context.Context, path string, off, length int64) ([]fs.BlockLocation, error) {
	b, err := f.OpenBlob(ctx, path)
	if err != nil {
		return nil, err
	}
	s, err := b.Latest(ctx)
	if err != nil {
		return nil, err
	}
	locs, err := s.Locations(ctx, off, length)
	if err != nil {
		return nil, err
	}
	out := make([]fs.BlockLocation, len(locs))
	for i, l := range locs {
		out[i] = fs.BlockLocation{Off: l.Off, Len: l.Len, Hosts: l.Hosts}
	}
	return out, nil
}

// Versions returns the published version count of a file.
func (f *FS) Versions(ctx context.Context, path string) (blob.Version, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return 0, err
	}
	v, _, err := f.cfg.Core.Latest(ctx, id)
	return v, err
}

// Prune discards every snapshot of path below version keep and
// reclaims the storage kept versions cannot reach (Section III-A1's
// version garbaging). Open readers pinned to kept versions are
// unaffected; readers below keep lose their snapshot.
func (f *FS) Prune(ctx context.Context, path string, keep blob.Version) (core.GCStats, error) {
	id, err := f.cfg.NS.GetFile(ctx, path)
	if err != nil {
		return core.GCStats{}, err
	}
	return f.cfg.Core.GC(ctx, id, keep)
}
