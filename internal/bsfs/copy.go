package bsfs

import (
	"context"
	"fmt"
	"sync"

	"blobseer/internal/blob"
)

// maxVersion folds the highest version out of a slice (0 if none).
func maxVersion(vs []blob.Version) blob.Version {
	var out blob.Version
	for _, v := range vs {
		if v > out {
			out = v
		}
	}
	return out
}

// ParallelCopy copies src to dst with `workers` concurrent streams —
// the exact use case Section V-F motivates concurrent writes with:
// each worker reads a distinct part of the source and writes it at the
// same offset of the destination, with no coordination beyond range
// assignment. The source is pinned to its latest published snapshot,
// so concurrent writers to src cannot tear the copy. On HDFS-like
// layers this operation is impossible: one writer owns a file.
//
// Worker ranges are block-aligned (a partial block is only legal at
// the destination's end), so every write proceeds with full
// write/write concurrency through the version manager.
func (f *FS) ParallelCopy(ctx context.Context, src, dst string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	srcID, err := f.cfg.NS.GetFile(ctx, src)
	if err != nil {
		return err
	}
	srcVer, size, err := f.cfg.Core.Latest(ctx, srcID)
	if err != nil {
		return err
	}
	return f.copyRange(ctx, srcID, srcVer, size, dst, workers)
}

// copyRange copies [0, size) of srcID at snapshot srcVer into a fresh
// file dst using `workers` concurrent offset writers.
func (f *FS) copyRange(ctx context.Context, srcID blob.ID, srcVer blob.Version, size int64, dst string, workers int) error {
	dstID, err := f.cfg.NS.CreateFile(ctx, dst, f.cfg.BlockSize, f.cfg.Replication, true)
	if err != nil {
		return err
	}
	if size == 0 {
		return nil
	}

	// Split into block-aligned worker ranges.
	bs := f.cfg.BlockSize
	blocks := (size + bs - 1) / bs
	perWorker := (blocks + int64(workers) - 1) / int64(workers)
	type span struct{ off, ln int64 }
	var spans []span
	for b := int64(0); b < blocks; b += perWorker {
		off := b * bs
		ln := perWorker * bs
		if off+ln > size {
			ln = size - off
		}
		spans = append(spans, span{off, ln})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	versions := make([]blob.Version, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			data, err := f.cfg.Core.Read(ctx, srcID, srcVer, sp.off, sp.ln)
			if err != nil {
				errs[i] = fmt.Errorf("bsfs: copy read [%d,+%d): %w", sp.off, sp.ln, err)
				return
			}
			v, err := f.cfg.Core.Write(ctx, dstID, sp.off, data)
			if err != nil {
				errs[i] = fmt.Errorf("bsfs: copy write [%d,+%d): %w", sp.off, sp.ln, err)
				return
			}
			versions[i] = v
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Wait until the last chunk's version is published so the complete
	// copy is observable by the caller's next Open.
	_, _, err = f.cfg.Core.WaitPublished(ctx, dstID, maxVersion(versions), 0)
	return err
}

// Branch materializes snapshot `version` of src as a new independent
// file dst — the paper's dataset branching (Sections II-A and III-A1):
// the branch and the original evolve independently from the moment of
// the split. Implemented as a pinned parallel copy; metadata-level
// copy-on-write branching across blobs would require blob-crossing
// tree references and is future work here as it is in the paper.
func (f *FS) Branch(ctx context.Context, src string, version uint64, dst string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	srcID, err := f.cfg.NS.GetFile(ctx, src)
	if err != nil {
		return err
	}
	v := blob.Version(version)
	d, err := f.cfg.Core.VM().VersionInfo(ctx, srcID, v)
	if err != nil {
		return err
	}
	return f.copyRange(ctx, srcID, v, d.SizeAfter, dst, workers)
}
