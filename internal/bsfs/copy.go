package bsfs

import (
	"context"
	"fmt"
	"io"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/vmanager"
)

// maxVersion folds the highest version out of a slice (0 if none).
func maxVersion(vs []blob.Version) blob.Version {
	var out blob.Version
	for _, v := range vs {
		if v > out {
			out = v
		}
	}
	return out
}

// ParallelCopy copies src to dst with `workers` concurrent streams —
// the exact use case Section V-F motivates concurrent writes with:
// each worker reads a distinct part of the source and writes it at the
// same offset of the destination, with no coordination beyond range
// assignment. The source is pinned to its latest published snapshot,
// so concurrent writers to src cannot tear the copy. On HDFS-like
// layers this operation is impossible: one writer owns a file.
//
// Worker ranges are block-aligned (a partial block is only legal at
// the destination's end), so every write proceeds with full
// write/write concurrency through the version manager.
func (f *FS) ParallelCopy(ctx context.Context, src, dst string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	b, err := f.OpenBlob(ctx, src)
	if err != nil {
		return err
	}
	s, err := b.Latest(ctx)
	if err != nil {
		return err
	}
	return f.copySnapshot(ctx, s, dst, workers)
}

// copySnapshot copies a pinned source snapshot into a fresh file dst
// using `workers` concurrent offset writers. The snapshot handle is
// shared by every worker: the version metadata was resolved once at
// the pin, and each worker's ReadAt fills its own range with no
// per-call round-trips.
func (f *FS) copySnapshot(ctx context.Context, s *core.Snapshot, dst string, workers int) error {
	dstID, err := f.cfg.NS.CreateFile(ctx, dst, f.cfg.BlockSize, f.cfg.Replication, true)
	if err != nil {
		return err
	}
	size := s.Size()
	if size == 0 {
		return nil
	}
	dstBlob, err := f.cfg.Core.OpenBlob(ctx, dstID)
	if err != nil {
		return err
	}

	// Split into block-aligned worker ranges.
	bs := f.cfg.BlockSize
	blocks := (size + bs - 1) / bs
	perWorker := (blocks + int64(workers) - 1) / int64(workers)
	type span struct{ off, ln int64 }
	var spans []span
	for b := int64(0); b < blocks; b += perWorker {
		off := b * bs
		ln := perWorker * bs
		if off+ln > size {
			ln = size - off
		}
		spans = append(spans, span{off, ln})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	versions := make([]blob.Version, len(spans))
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			data := make([]byte, sp.ln)
			if _, err := s.ReadAtContext(ctx, data, sp.off); err != nil && err != io.EOF {
				errs[i] = fmt.Errorf("bsfs: copy read [%d,+%d): %w", sp.off, sp.ln, err)
				return
			}
			v, err := dstBlob.Write(ctx, sp.off, data)
			if err != nil {
				errs[i] = fmt.Errorf("bsfs: copy write [%d,+%d): %w", sp.off, sp.ln, err)
				return
			}
			versions[i] = v
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Wait until the last chunk's version is published so the complete
	// copy is observable by the caller's next Open.
	_, err = dstBlob.WaitPublished(ctx, maxVersion(versions), 0)
	return err
}

// Branch materializes snapshot `version` of src as a new independent
// file dst — the paper's dataset branching (Sections II-A and III-A1):
// the branch and the original evolve independently from the moment of
// the split. Implemented as a pinned parallel copy; metadata-level
// copy-on-write branching across blobs would require blob-crossing
// tree references and is future work here as it is in the paper.
func (f *FS) Branch(ctx context.Context, src string, version uint64, dst string, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if blob.Version(version) == blob.NoVersion {
		return fmt.Errorf("bsfs: %w: 0 (published versions start at 1)", vmanager.ErrBadVersion)
	}
	b, err := f.OpenBlob(ctx, src)
	if err != nil {
		return err
	}
	s, err := b.Snapshot(ctx, blob.Version(version))
	if err != nil {
		return err
	}
	return f.copySnapshot(ctx, s, dst, workers)
}
