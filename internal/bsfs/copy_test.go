package bsfs_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

const copyBlock = int64(4 * util.KB)

func copyCluster(t *testing.T) *cluster.BlobSeer {
	t.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     copyBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

// TestParallelCopy checks the Section V-F use case across sizes that
// exercise every alignment: sub-block, exact blocks, and unaligned
// tails, with worker counts from serial to more-workers-than-blocks.
func TestParallelCopy(t *testing.T) {
	cl := copyCluster(t)
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	for _, size := range []int64{1, copyBlock, copyBlock + 1, 3 * copyBlock, 7*copyBlock + 123} {
		for _, workers := range []int{1, 2, 5, 16} {
			payload := make([]byte, size)
			rng.Read(payload)
			w, err := fsys.Create(ctx, "/src", true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(payload); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			if err := fsys.ParallelCopy(ctx, "/src", "/dst", workers); err != nil {
				t.Fatalf("size %d workers %d: %v", size, workers, err)
			}
			r, err := fsys.Open(ctx, "/dst")
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("size %d workers %d: copy diverged (%d vs %d bytes)",
					size, workers, len(got), len(payload))
			}
		}
	}
}

// TestParallelCopyPinsSource: appends racing the copy must not tear it
// — the copy reads the snapshot that was latest when it started.
func TestParallelCopyPinsSource(t *testing.T) {
	cl := copyCluster(t)
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	original := bytes.Repeat([]byte{'o'}, int(4*copyBlock))
	w, err := fsys.Create(ctx, "/src", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(original); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Race an appender against the copy.
	done := make(chan error, 1)
	go func() {
		a, err := fsys.Append(ctx, "/src")
		if err != nil {
			done <- err
			return
		}
		if _, err := a.Write(bytes.Repeat([]byte{'X'}, int(2*copyBlock))); err != nil {
			done <- err
			return
		}
		done <- a.Close()
	}()
	if err := fsys.ParallelCopy(ctx, "/src", "/dst", 4); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	r, err := fsys.Open(ctx, "/dst")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The copy is either exactly the original or the original plus the
	// complete append (if it published before the copy pinned) — never
	// a torn mixture.
	withAppend := append(append([]byte{}, original...), bytes.Repeat([]byte{'X'}, int(2*copyBlock))...)
	if !bytes.Equal(got, original) && !bytes.Equal(got, withAppend) {
		t.Fatalf("torn copy: %d bytes", len(got))
	}
}

// TestParallelCopyEmptySource: copying an empty file produces an empty
// destination.
func TestParallelCopyEmptySource(t *testing.T) {
	cl := copyCluster(t)
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/src", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.ParallelCopy(ctx, "/src", "/dst", 3); err != nil {
		t.Fatal(err)
	}
	st, err := fsys.Stat(ctx, "/dst")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 0 {
		t.Fatalf("empty copy has size %d", st.Size)
	}
}
