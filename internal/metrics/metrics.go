// Package metrics is the dependency-free observability core shared by
// every BlobSeer service: counters, gauges, callback gauges, and
// fixed-bucket latency histograms with interpolated percentiles. It is
// built for hot paths — one atomic add per counter increment, one
// atomic add plus an O(1) bucket index per histogram observation — and
// every method is safe on a nil receiver, so a nil *Registry is the
// zero-cost no-op registry (the ablation baseline for measuring
// instrumentation overhead).
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: one bucket per bit length of
// the observed value, so bucket i holds values in (2^(i-1), 2^i] and
// indexing is a single bits.Len64 — no search, no configuration.
// 64 buckets cover every int64, from 1 ns to ~292 years.
const histBuckets = 64

// Histogram records int64 observations (latency in nanoseconds, batch
// sizes, frame counts, ...) into power-of-two buckets and estimates
// quantiles by linear interpolation inside the hit bucket. All methods
// are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Observe records one value. Values <= 0 land in the first bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by walking the bucket
// counts and interpolating linearly inside the bucket where the rank
// falls. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / n
			return lo + frac*(hi-lo)
		}
		seen += n
	}
	// Rounding left the rank past the last populated bucket.
	return math.Pow(2, float64(histBuckets))
}

// bucketBounds returns the value range (lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	lo = math.Pow(2, float64(i))
	return lo, lo * 2
}

// HistSnapshot is a histogram's exported shape: count, sum, and the
// three interpolated percentiles every BlobSeer dashboard cares about.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time copy of one registry: plain values only,
// safe to encode.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Registry holds one service instance's named metrics. Lookups
// get-or-create under a mutex; services resolve their metrics once at
// construction so the hot path never touches the map. A nil *Registry
// hands out nil metrics, turning every downstream operation into a
// no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot
// time only, so it may hold locks or walk state that would be too
// expensive per-operation (WAL status, membership tables, tier
// counters).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value. Callback gauges are
// evaluated here; a panic in one is the caller's bug and intentionally
// not swallowed.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 || len(funcs) > 0 {
		s.Gauges = make(map[string]int64, len(gauges)+len(funcs))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
		for k, fn := range funcs {
			s.Gauges[k] = fn()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = HistSnapshot{
				Count: v.Count(),
				Sum:   v.Sum(),
				P50:   v.Quantile(0.50),
				P99:   v.Quantile(0.99),
				P999:  v.Quantile(0.999),
			}
		}
	}
	return s
}

// sortedKeys returns map keys in stable order (text exporter, tests).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
