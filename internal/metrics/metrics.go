// Package metrics is the dependency-free observability core shared by
// every BlobSeer service: counters, gauges, callback gauges, and
// fixed-bucket latency histograms with interpolated percentiles. It is
// built for hot paths — one atomic add per counter increment, one
// atomic add plus an O(1) bucket index per histogram observation — and
// every method is safe on a nil receiver, so a nil *Registry is the
// zero-cost no-op registry (the ablation baseline for measuring
// instrumentation overhead).
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: one bucket per bit length of
// the observed value, so bucket i holds values in (2^(i-1), 2^i] and
// indexing is a single bits.Len64 — no search, no configuration.
// 64 buckets cover every int64, from 1 ns to ~292 years.
const histBuckets = 64

// Rate windowing: in addition to the cumulative buckets, a histogram
// keeps histWindows rotating bucket windows of DefaultWindow each and
// reports the merge of the last DefaultWindowMerge as its "recent"
// view — so a mid-run latency regression shows up instead of diluting
// into since-process-start history. Rotation is epoch-stamped CAS:
// the first observer of a new epoch zeroes the slot it reuses.
// Observations racing a rotation may land in either epoch; that
// boundary noise is acceptable for a monitoring window.
const (
	histWindows = 8
	// DefaultWindow is the span of one rotating window slot.
	DefaultWindow = 10 * time.Second
	// DefaultWindowMerge is how many trailing windows merge into the
	// "recent" view (3 × 10s ≈ the last half minute).
	DefaultWindowMerge = 3
)

type histWindow struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram records int64 observations (latency in nanoseconds, batch
// sizes, frame counts, ...) into power-of-two buckets and estimates
// quantiles by linear interpolation inside the hit bucket. All methods
// are lock-free. The zero value is cumulative-only; registry-created
// histograms also maintain the rotating recent windows.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64

	window   int64 // window slot span in ns; 0 disables windowing
	winMerge int   // trailing windows merged into the recent view
	win      [histWindows]histWindow
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Observe records one value. Values <= 0 land in the first bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := bucketIndex(v)
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[idx].Add(1)
	if h.window > 0 {
		e := time.Now().UnixNano() / h.window
		w := &h.win[int(e%histWindows)]
		if old := w.epoch.Load(); old != e {
			if w.epoch.CompareAndSwap(old, e) {
				// This slot last held epoch e-histWindows; the winner
				// of the CAS recycles it for the new epoch.
				w.count.Store(0)
				w.sum.Store(0)
				for i := range w.buckets {
					w.buckets[i].Store(0)
				}
			}
		}
		w.count.Add(1)
		w.sum.Add(v)
		w.buckets[idx].Add(1)
	}
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by walking the bucket
// counts and interpolating linearly inside the bucket where the rank
// falls. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var b [histBuckets]int64
	for i := range b {
		b[i] = h.buckets[i].Load()
	}
	return quantileOf(&b, h.count.Load(), q)
}

// quantileOf is the interpolation shared by the cumulative and the
// windowed views: it walks a plain bucket-count array so merged window
// snapshots get the same estimator as live histograms.
func quantileOf(b *[histBuckets]int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := 0; i < histBuckets; i++ {
		n := float64(b[i])
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / n
			return lo + frac*(hi-lo)
		}
		seen += n
	}
	// Rounding left the rank past the last populated bucket.
	return math.Pow(2, float64(histBuckets))
}

// bucketBounds returns the value range (lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	lo = math.Pow(2, float64(i))
	return lo, lo * 2
}

// HistBucket is one cumulative bucket line of a snapshot: the count of
// observations <= Le.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// WindowStats is the merged view of a histogram's trailing windows:
// the same count/sum/percentile shape as the cumulative view, but
// covering only the last Seconds of observations.
type WindowStats struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
	P999    float64 `json:"p999"`
}

// HistSnapshot is a histogram's exported shape: count, sum, the three
// interpolated percentiles every BlobSeer dashboard cares about, the
// cumulative bucket counts (up to the highest populated bucket), and —
// for windowed histograms — the merged recent view.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	P999    float64      `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
	Recent  *WindowStats `json:"recent,omitempty"`
}

// bucketLe is bucket i's inclusive upper bound as an int64 (the last
// buckets clamp to MaxInt64 rather than overflow).
func bucketLe(i int) int64 {
	if i == 0 {
		return 1
	}
	if i >= 62 {
		return math.MaxInt64
	}
	return int64(1) << (i + 1)
}

// SnapshotValues captures the histogram's exported shape.
func (h *Histogram) SnapshotValues() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var b [histBuckets]int64
	top := -1
	for i := range b {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			top = i
		}
	}
	count := h.count.Load()
	s := HistSnapshot{
		Count: count,
		Sum:   h.sum.Load(),
		P50:   quantileOf(&b, count, 0.50),
		P99:   quantileOf(&b, count, 0.99),
		P999:  quantileOf(&b, count, 0.999),
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += b[i]
		s.Buckets = append(s.Buckets, HistBucket{Le: bucketLe(i), Count: cum})
	}
	s.Recent = h.Recent()
	return s
}

// Recent merges the histogram's trailing windows (the last winMerge
// slots, current one included) into one view. Nil when the histogram
// is not windowed.
func (h *Histogram) Recent() *WindowStats {
	if h == nil || h.window <= 0 {
		return nil
	}
	e0 := time.Now().UnixNano() / h.window
	var b [histBuckets]int64
	var count, sum int64
	for i := range h.win {
		w := &h.win[i]
		e := w.epoch.Load()
		if e <= e0 && e > e0-int64(h.winMerge) {
			count += w.count.Load()
			sum += w.sum.Load()
			for j := range b {
				b[j] += w.buckets[j].Load()
			}
		}
	}
	return &WindowStats{
		Seconds: time.Duration(h.window * int64(h.winMerge)).Seconds(),
		Count:   count,
		Sum:     sum,
		P50:     quantileOf(&b, count, 0.50),
		P99:     quantileOf(&b, count, 0.99),
		P999:    quantileOf(&b, count, 0.999),
	}
}

// Snapshot is a point-in-time copy of one registry: plain values only,
// safe to encode.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Registry holds one service instance's named metrics. Lookups
// get-or-create under a mutex; services resolve their metrics once at
// construction so the hot path never touches the map. A nil *Registry
// hands out nil metrics, turning every downstream operation into a
// no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram

	window   time.Duration
	winMerge int
}

// NewRegistry returns an empty registry. Its histograms rotate recent
// windows at the package defaults; SetWindow overrides.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		window:   DefaultWindow,
		winMerge: DefaultWindowMerge,
	}
}

// SetWindow configures the rotating-window span and merge depth for
// histograms created after the call (tests shrink the window to
// milliseconds; d <= 0 turns windowing off entirely).
func (r *Registry) SetWindow(d time.Duration, merge int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.window = d
	if merge < 1 {
		merge = 1
	}
	if merge > histWindows-1 {
		// One slot is always the epoch being overwritten next; merging
		// all 8 would mix a window from two rotations ago into "recent".
		merge = histWindows - 1
	}
	r.winMerge = merge
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot
// time only, so it may hold locks or walk state that would be too
// expensive per-operation (WAL status, membership tables, tier
// counters).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{winMerge: r.winMerge}
		if r.window > 0 {
			h.window = int64(r.window)
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value. Callback gauges are
// evaluated here; a panic in one is the caller's bug and intentionally
// not swallowed.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 || len(funcs) > 0 {
		s.Gauges = make(map[string]int64, len(gauges)+len(funcs))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
		for k, fn := range funcs {
			s.Gauges[k] = fn()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.SnapshotValues()
		}
	}
	return s
}

// sortedKeys returns map keys in stable order (text exporter, tests).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
