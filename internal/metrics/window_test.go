package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWindowedHistogramRecent: a windowed histogram's Recent() view
// must cover the last winMerge windows and age out, while the
// cumulative counters keep everything.
func TestWindowedHistogramRecent(t *testing.T) {
	r := NewRegistry()
	r.SetWindow(25*time.Millisecond, 2)
	h := r.Histogram("lat")

	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	rec := h.Recent()
	if rec == nil {
		t.Fatal("windowed histogram returned nil Recent")
	}
	if rec.Count != 10 {
		t.Fatalf("Recent().Count = %d immediately after observing, want 10", rec.Count)
	}
	if want := (50 * time.Millisecond).Seconds(); rec.Seconds != want {
		t.Errorf("Recent().Seconds = %v, want %v (window x merge)", rec.Seconds, want)
	}
	if rec.P50 <= 0 {
		t.Errorf("Recent().P50 = %v, want > 0", rec.P50)
	}

	// Outwait the merge horizon: the recent view empties, the
	// cumulative view does not.
	time.Sleep(80 * time.Millisecond)
	if rec = h.Recent(); rec.Count != 0 {
		t.Errorf("Recent().Count = %d after the merge horizon passed, want 0", rec.Count)
	}
	if h.Count() != 10 {
		t.Errorf("cumulative Count = %d, want 10 (windows must not affect totals)", h.Count())
	}
}

// TestWindowedHistogramRotation: observations straddling a window edge
// land in different slots, and the merged view still sees both while
// inside the horizon.
func TestWindowedHistogramRotation(t *testing.T) {
	r := NewRegistry()
	r.SetWindow(30*time.Millisecond, 3)
	h := r.Histogram("lat")

	h.Observe(1)
	time.Sleep(35 * time.Millisecond) // cross at least one window edge
	h.Observe(1)
	if rec := h.Recent(); rec.Count != 2 {
		t.Errorf("Recent().Count = %d across a rotation, want 2", rec.Count)
	}
}

// TestUnwindowedRecentIsNil: Recent is strictly opt-out via
// SetWindow(0, 0); the default registry windows at DefaultWindow.
func TestUnwindowedRecentIsNil(t *testing.T) {
	r := NewRegistry()
	r.SetWindow(0, 0)
	h := r.Histogram("lat")
	h.Observe(5)
	if h.Recent() != nil {
		t.Error("unwindowed histogram returned a Recent view")
	}
	if h.SnapshotValues().Recent != nil {
		t.Error("unwindowed snapshot carries a Recent view")
	}
}

// TestSnapshotBucketsCumulative: the exported bucket counts are
// cumulative (each le's count includes every smaller bucket), closing
// at the total.
func TestSnapshotBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{1, 1, 3, 10, 1000} {
		h.Observe(v)
	}
	s := h.SnapshotValues()
	if len(s.Buckets) == 0 {
		t.Fatal("snapshot has no buckets")
	}
	var prevLe, prevCount int64
	for _, b := range s.Buckets {
		if b.Le <= prevLe {
			t.Fatalf("bucket bounds not increasing: %d after %d", b.Le, prevLe)
		}
		if b.Count < prevCount {
			t.Fatalf("bucket counts not cumulative: %d after %d", b.Count, prevCount)
		}
		prevLe, prevCount = b.Le, b.Count
	}
	if last := s.Buckets[len(s.Buckets)-1].Count; last != 5 {
		t.Errorf("top bucket count = %d, want the total 5", last)
	}
	// Spot-check the first bucket: both observations of 1 land in le=1.
	if s.Buckets[0].Le != 1 || s.Buckets[0].Count != 2 {
		t.Errorf("first bucket = {le=%d} %d, want {le=1} 2", s.Buckets[0].Le, s.Buckets[0].Count)
	}
}

// TestTextFormatScrape pins the scrape-friendly text contract: type
// hints, cumulative bucket lines closed by +Inf, and the windowed
// recent lines.
func TestTextFormatScrape(t *testing.T) {
	reg := NewRegistry()
	reg.SetWindow(time.Minute, 2) // wide window: observations stay recent
	reg.Counter("ops").Add(7)
	reg.Gauge("depth").Set(3)
	h := reg.Histogram("lat")
	h.Observe(3)
	h.Observe(100)

	e := NewExporter()
	e.Register("svc", reg)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# type svc.ops counter",
		"svc.ops 7",
		"# type svc.depth gauge",
		"svc.depth 3",
		"# type svc.lat histogram",
		"svc.lat.bucket{le=4} 1",      // value 3 lands in (2, 4]
		"svc.lat.bucket{le=128} 2",    // value 100 closes the cumulative run
		"svc.lat.bucket{le=+Inf} 2\n", // always emitted, equals count
		"svc.lat{count} 2",
		"svc.lat{recent_count} 2",
		"svc.lat{recent_p50}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q:\n%s", want, text)
		}
	}

	// Cumulative bucket lines must be monotonically non-decreasing in
	// the order emitted.
	var prev int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, ".bucket{le=") || strings.Contains(line, "+Inf") {
			continue
		}
		j := strings.Index(line, "} ")
		c, err := strconv.ParseInt(line[j+2:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if c < prev {
			t.Fatalf("bucket counts regressed at %q", line)
		}
		prev = c
	}
}
