package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Exporter serves one or more named registries over HTTP. Every daemon
// role registers the registries of the services it hosts ("vmanager",
// "provider-0", ...) and mounts the exporter at /metrics; an in-proc
// cluster registers every service into one exporter so a single scrape
// shows the whole deployment.
type Exporter struct {
	mu   sync.Mutex
	regs map[string]*Registry
}

// NewExporter returns an empty exporter.
func NewExporter() *Exporter {
	return &Exporter{regs: make(map[string]*Registry)}
}

// Register adds (or replaces) a named registry. Nil registries are
// ignored so callers can wire optional metrics unconditionally.
func (e *Exporter) Register(name string, r *Registry) {
	if e == nil || r == nil {
		return
	}
	e.mu.Lock()
	e.regs[name] = r
	e.mu.Unlock()
}

// Snapshot captures every registered registry.
func (e *Exporter) Snapshot() map[string]Snapshot {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	regs := make(map[string]*Registry, len(e.regs))
	for k, v := range e.regs {
		regs[k] = v
	}
	e.mu.Unlock()
	out := make(map[string]Snapshot, len(regs))
	for k, v := range regs {
		out[k] = v.Snapshot()
	}
	return out
}

// ServeHTTP renders the exporter state: JSON by default, scrape-
// friendly line-oriented text with ?format=text. The text format
// carries `# type` hints, cumulative histogram bucket lines
// (service.metric.bucket{le=N} count, closed by le=+Inf), and the
// windowed recent view, so external collectors can ingest it without
// the JSON path.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	snap := e.Snapshot()
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, svc := range sortedKeys(snap) {
			s := snap[svc]
			for _, k := range sortedKeys(s.Counters) {
				fmt.Fprintf(w, "# type %s.%s counter\n", svc, k)
				fmt.Fprintf(w, "%s.%s %d\n", svc, k, s.Counters[k])
			}
			for _, k := range sortedKeys(s.Gauges) {
				fmt.Fprintf(w, "# type %s.%s gauge\n", svc, k)
				fmt.Fprintf(w, "%s.%s %d\n", svc, k, s.Gauges[k])
			}
			for _, k := range sortedKeys(s.Histograms) {
				h := s.Histograms[k]
				fmt.Fprintf(w, "# type %s.%s histogram\n", svc, k)
				for _, b := range h.Buckets {
					fmt.Fprintf(w, "%s.%s.bucket{le=%d} %d\n", svc, k, b.Le, b.Count)
				}
				fmt.Fprintf(w, "%s.%s.bucket{le=+Inf} %d\n", svc, k, h.Count)
				fmt.Fprintf(w, "%s.%s{count} %d\n", svc, k, h.Count)
				fmt.Fprintf(w, "%s.%s{sum} %d\n", svc, k, h.Sum)
				fmt.Fprintf(w, "%s.%s{p50} %.0f\n", svc, k, h.P50)
				fmt.Fprintf(w, "%s.%s{p99} %.0f\n", svc, k, h.P99)
				fmt.Fprintf(w, "%s.%s{p999} %.0f\n", svc, k, h.P999)
				if r := h.Recent; r != nil {
					fmt.Fprintf(w, "%s.%s{recent_count} %d\n", svc, k, r.Count)
					fmt.Fprintf(w, "%s.%s{recent_p50} %.0f\n", svc, k, r.P50)
					fmt.Fprintf(w, "%s.%s{recent_p99} %.0f\n", svc, k, r.P99)
					fmt.Fprintf(w, "%s.%s{recent_p999} %.0f\n", svc, k, r.P999)
				}
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// Handler returns an http.Handler with the exporter mounted at
// /metrics (and at /, so `curl host:port` works too).
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", e)
	mux.Handle("/", e)
	return mux
}

// Serve starts an HTTP listener on addr (":0" picks a free port) and
// returns the bound address plus a stop function.
func (e *Exporter) Serve(addr string) (string, func() error, error) {
	return ServeHandler(addr, e.Handler())
}

// ServeHandler starts an HTTP listener on addr (":0" picks a free
// port) serving h, returning the bound address plus a stop function.
// Daemons use it to co-mount the trace endpoint next to /metrics on
// one listener.
func ServeHandler(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// Fetch scrapes a /metrics endpoint (host:port or full URL) and
// decodes the JSON snapshot — the client side used by `bsfsctl top`
// and the blaster's live progress line.
func Fetch(endpoint string) (map[string]Snapshot, error) {
	url := endpoint
	if len(url) < 7 || (url[:7] != "http://" && (len(url) < 8 || url[:8] != "https://")) {
		url = "http://" + url
	}
	if len(url) < 8 || url[len(url)-8:] != "/metrics" {
		url += "/metrics"
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s returned %s", url, resp.Status)
	}
	var out map[string]Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
