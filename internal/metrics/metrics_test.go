package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("Counter did not return the same instance")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("live", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["ops"] != 5 || s.Gauges["depth"] != 4 || s.Gauges["live"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("y")
	g.Set(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := r.Histogram("z")
	h.Observe(100)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	r.GaugeFunc("f", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 observations spread uniformly over [1ms, 2ms): they all land
	// in one power-of-two bucket, so interpolation is what recovers the
	// percentile positions.
	const base = 1 << 20 // ~1.05ms in ns
	for i := 0; i < 1000; i++ {
		h.Observe(base + int64(i)*base/1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99, p999 := h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)
	if !(p50 < p99 && p99 < p999) {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	// Interpolated values must stay inside the bucket the data occupies.
	if p50 < base || p999 > 2*base {
		t.Fatalf("quantiles escaped the bucket: p50=%v p999=%v (bucket [%d,%d))", p50, p999, base, 2*base)
	}
	// p50 of a uniform fill should land near the middle of the bucket.
	mid := float64(base) * 1.5
	if p50 < 0.8*mid || p50 > 1.2*mid {
		t.Fatalf("p50 = %v, want near %v", p50, mid)
	}
}

func TestHistogramWideSpread(t *testing.T) {
	h := &Histogram{}
	// 90 fast ops (~1µs), 10 slow ops (~1s): p50 must sit with the fast
	// mass, p999 with the slow tail.
	for i := 0; i < 90; i++ {
		h.Observe(int64(time.Microsecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(time.Second))
	}
	if p50 := h.Quantile(0.50); p50 > float64(4*time.Microsecond) {
		t.Fatalf("p50 = %v ns, want ~1µs", p50)
	}
	if p999 := h.Quantile(0.999); p999 < float64(500*time.Millisecond) {
		t.Fatalf("p999 = %v ns, want ~1s", p999)
	}
	if h.Observe(-5); h.Count() != 101 {
		t.Fatal("negative observations must still count")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(seed + int64(i))
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestExporterHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("puts").Add(3)
	reg.Gauge("live").Set(2)
	reg.Histogram("latency").Observe(int64(5 * time.Millisecond))

	e := NewExporter()
	e.Register("provider-0", reg)
	e.Register("ignored", nil) // nil registries must be dropped

	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["ignored"]; ok {
		t.Fatal("nil registry leaked into the export")
	}
	s := snap["provider-0"]
	if s.Counters["puts"] != 3 || s.Gauges["live"] != 2 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if h := s.Histograms["latency"]; h.Count != 1 || h.P99 <= 0 {
		t.Fatalf("bad histogram export: %+v", h)
	}

	// Text format.
	resp2, err := http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"provider-0.puts 3", "provider-0.live 2", "provider-0.latency{count} 1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}

	// Fetch round-trips the same snapshot.
	got, err := Fetch(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got["provider-0"].Counters["puts"] != 3 {
		t.Fatalf("Fetch mismatch: %+v", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("ops")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNoop(b *testing.B) {
	var r *Registry
	c := r.Counter("ops")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("latency")
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

func BenchmarkHistogramObserveNoop(b *testing.B) {
	var r *Registry
	h := r.Histogram("latency")
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}
