// Package wal implements the crash-durability substrate for BlobSeer's
// control services: a CRC-framed append-only record log with segment
// rotation, snapshot+compact, and replay.
//
// BlobSeer's version manager is the single serialization point of the
// whole design — the paper's lock-free concurrency story reduces every
// write to one tiny AssignVersion/Publish exchange with it — which
// also makes it the single point where a crash can lose the
// publication line. The WAL closes that hole with a deliberately
// conventional design (the same shape as etcd's wal or LevelDB's log):
// state changes are appended as opaque records before they are acked,
// and recovery replays them in order into a fresh in-memory state.
//
// On-disk layout (this comment is the format's authoritative doc,
// alongside the provider and dht wire-format package comments):
//
//	wal-00000001.seg   records, appended in order
//	wal-00000002.seg   opened when the previous segment passed SegmentBytes
//	snap-00000002.snap state snapshot superseding segments 1..2
//
// Each segment starts with an 8-byte header (magic "BSWAL001"), then
// records framed as:
//
//	u32 length | u32 crc32(IEEE, payload) | payload
//
// A torn tail — a partial record at the end of the *last* segment,
// from a crash mid-write — is detected by length/CRC and truncated. A
// CRC mismatch anywhere else is corruption and fails recovery loudly:
// silently skipping interior records would un-publish versions that
// clients already saw acknowledged.
//
// Snapshots are whole-state serializations written tmp+fsync+rename
// (the fsstore idiom), so a crash never leaves a half-written snapshot
// under the final name. A snapshot named snap-N.snap makes segments
// 1..N deletable; replay loads the newest snapshot and then the
// segments after it. Superseded segments and snapshots are removed
// only after the new snapshot is durably on disk.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Magic prefixes every segment file.
const Magic = "BSWAL001"

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per operation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.Interval: a crash can
	// lose the records appended since the last sync, in exchange for
	// amortizing the fsync across many appends. AppendSync still
	// forces durability for the records that must not be lost
	// (Publish acks).
	SyncInterval
)

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one
	// exceeds this size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Policy selects the fsync cadence; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the maximum time an appended record stays unsynced
	// under SyncInterval. 0 means DefaultInterval.
	Interval time.Duration
}

const (
	// DefaultSegmentBytes keeps segments small enough that replaying
	// the post-snapshot suffix stays fast.
	DefaultSegmentBytes = 4 << 20
	// DefaultInterval bounds the loss window under SyncInterval.
	DefaultInterval = 50 * time.Millisecond

	segHeaderSize = 8
	recHeaderSize = 8
	maxRecordSize = 64 << 20 // sanity bound; control records are tiny
)

// ErrCorrupt reports a CRC or framing violation in the interior of the
// log (not a torn tail, which recovery repairs silently).
var ErrCorrupt = errors.New("wal: corrupt record")

// Status is a point-in-time summary of the log, surfaced through
// `bsfsctl vm status`.
type Status struct {
	Dir          string
	Segments     int // live segment files
	FirstSeq     uint64
	LastSeq      uint64 // segment currently appended to
	SnapshotSeq  uint64 // newest snapshot's sequence, 0 if none
	LogBytes     int64  // total bytes across live segments
	Records      uint64 // records appended since Open (not lifetime)
	Syncs        uint64 // fsyncs issued since Open; < Records when group commit coalesces
	LastSyncUnix int64  // wall time of the last fsync, 0 if never
}

// Log is an append-only record log. All methods are safe for
// concurrent use; appends are serialized internally.
//
// Durable appends use group commit: the record bytes are written under
// l.mu, but the fsync that makes them durable runs outside it. At most
// one caller — the leader — has an fsync in flight (the syncing flag);
// by the time it issues it, every record appended so far — its own and
// any follower's — is in the file, so one fsync makes them all durable.
// Followers park on the syncDone condition instead of queueing for a
// lock: when the leader finishes it broadcasts, every covered follower
// returns at once, and the first uncovered one leads the next flush
// (covering everything appended while the previous one ran). Under W
// concurrent committers this turns W fsyncs into ~1, which is what lets
// publish throughput scale with writers instead of serializing on the
// disk flush.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current segment
	seq      uint64   // current segment sequence
	size     int64    // current segment size
	segs     []uint64 // live segment sequences, ascending (includes seq)
	snapSeq  uint64   // newest snapshot sequence, 0 if none
	records  uint64   // append sequence: total records written to the file
	synced   uint64   // records made durable; dirty iff synced < records
	syncs    uint64   // fsyncs issued
	lastSync time.Time

	// Group-commit leader election: syncing is true while a leader's
	// fsync is in flight outside l.mu; syncDone (on l.mu) wakes the
	// followers parked behind it.
	syncing  bool
	syncDone *sync.Cond

	syncTimer *time.Timer // pending interval sync, nil if none
	closed    bool
}

// Open opens (creating if needed) the log in dir.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	l.syncDone = sync.NewCond(&l.mu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openTail(); err != nil {
		return nil, err
	}
	return l, nil
}

// scan discovers existing segments and snapshots.
func (l *Log) scan() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan %s: %w", l.dir, err)
	}
	var snaps []uint64
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); n == 1 {
			l.segs = append(l.segs, seq)
		} else if n, _ := fmt.Sscanf(e.Name(), "snap-%08d.snap", &seq); n == 1 {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	if len(snaps) > 0 {
		l.snapSeq = snaps[len(snaps)-1]
	}
	return nil
}

// openTail opens the newest segment for appending (creating segment 1
// on a fresh log), truncating a torn tail if the process died mid
// append.
func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%08d.seg", seq))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%08d.snap", seq))
}

func (l *Log) openTail() error {
	if len(l.segs) == 0 {
		return l.rotateLocked(1)
	}
	seq := l.segs[len(l.segs)-1]
	path := l.segPath(seq)
	valid, err := scanSegment(path, nil)
	if err != nil {
		if errors.Is(err, ErrCorrupt) && len(l.segs) == 1 && l.snapSeq == 0 {
			// A lone segment that died before its header was written
			// holds nothing; recreate it.
			os.Remove(path)
			l.segs = nil
			return l.rotateLocked(seq)
		}
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open tail: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, valid
	return nil
}

// rotateLocked closes the current segment and starts seq. Callers hold
// l.mu (or are in Open, before the log is shared).
func (l *Log) rotateLocked(seq uint64) error {
	if l.f != nil {
		// The old segment's contents must be durable before records
		// land in the new one, or replay order could show a suffix
		// without its prefix. Every record written so far lives in the
		// old segment, so this sync covers them all — including any a
		// concurrent group-commit leader is waiting on (its own fsync
		// of the closed handle then fails, and it rechecks synced).
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.synced = l.records
		l.syncs++
		l.lastSync = time.Now()
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(l.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, segHeaderSize
	l.segs = append(l.segs, seq)
	return nil
}

// Append writes one record, durable per the configured policy.
func (l *Log) Append(payload []byte) error { return l.append(payload, false) }

// AppendSync writes one record and forces it (and, the log being
// sequential, every record before it) to disk before returning,
// regardless of policy. The version manager uses this for the records
// that back client-visible acknowledgements (Publish).
func (l *Log) AppendSync(payload []byte) error { return l.append(payload, true) }

func (l *Log) append(payload []byte, force bool) error {
	if len(payload) > maxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed")
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(l.seq + 1); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(recHeaderSize + len(payload))
	l.records++
	seq := l.records
	durable := force || l.opts.Policy == SyncAlways
	// SyncInterval: arm a lazy flush so an idle log still becomes
	// durable within Interval.
	if !durable && l.syncTimer == nil {
		l.syncTimer = time.AfterFunc(l.opts.Interval, func() {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.syncTimer = nil
			if !l.closed && l.synced < l.records {
				l.syncLocked() // best effort; next forced sync reports errors
			}
		})
	}
	l.mu.Unlock()

	if durable {
		// Group commit: the record is in the file; fsync outside l.mu
		// so concurrent appenders keep writing while the flush runs.
		return l.syncTo(seq)
	}
	return nil
}

// syncTo returns once record seq is durable. Callers whose record was
// covered by another leader's fsync (or a segment rotation's) return
// without touching the disk; an uncovered caller finding no leader in
// flight becomes one itself.
func (l *Log) syncTo(seq uint64) error {
	l.mu.Lock()
	for {
		if l.synced >= seq {
			l.mu.Unlock()
			return nil // a previous group commit covered this record
		}
		if l.closed {
			l.mu.Unlock()
			return errors.New("wal: log closed")
		}
		if !l.syncing {
			break // no leader in flight: lead the next group commit
		}
		l.syncDone.Wait()
	}
	l.syncing = true
	l.mu.Unlock()
	// The previous leader's broadcast woke a herd of committers that are
	// about to append their next records; yielding once lets those
	// appends land before the flush target is captured, so they ride
	// this fsync instead of forcing another. (Batch size, not latency,
	// bounds durable throughput: the yield is nanoseconds against a
	// >100µs fsync.)
	runtime.Gosched()
	l.mu.Lock()
	f := l.f // seq is unsynced, so it lives in the current segment
	target := l.records
	l.mu.Unlock()

	err := f.Sync()

	l.mu.Lock()
	l.syncing = false
	if err == nil {
		if target > l.synced {
			l.synced = target
		}
		l.syncs++
		l.lastSync = time.Now()
	}
	// A concurrent rotation/snapshot may have synced (then closed) the
	// segment under us; if it advanced past seq the record is durable
	// and the stale-handle error is moot.
	covered := l.synced >= seq
	l.syncDone.Broadcast()
	l.mu.Unlock()
	if err != nil && !covered {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// syncLocked fsyncs under l.mu (interval flush, seal, close paths —
// not the group-commit hot path).
func (l *Log) syncLocked() error {
	if l.synced >= l.records {
		return nil
	}
	target := l.records
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced = target
	l.syncs++
	l.lastSync = time.Now()
	return nil
}

// Sync forces all appended records to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Close flushes and closes the log. It waits for an in-flight group
// commit to finish so the segment handle is never closed under a
// leader's fsync.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.syncDone.Wait()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	if l.syncTimer != nil {
		l.syncTimer.Stop()
		l.syncTimer = nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SaveSnapshot durably writes state as the snapshot superseding every
// record appended so far, then deletes the segments (and older
// snapshots) it makes redundant. Appends may continue concurrently:
// the snapshot covers a prefix of the log, and replaying a record
// already folded into the snapshot must be idempotent (which BlobSeer's
// commit/abort records are).
func (l *Log) SaveSnapshot(state []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed")
	}
	// Seal the current segment: the snapshot supersedes segments
	// 1..seq, and new appends go to seq+1 so compaction has a clean
	// boundary.
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	snapSeq := l.seq
	if err := l.rotateLocked(l.seq + 1); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	// Write the snapshot tmp+fsync+rename so a crash never leaves a
	// half-written snapshot under the final name.
	path := l.snapPath(snapSeq)
	tmp, err := os.CreateTemp(l.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(state)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(state))
	_, err = tmp.Write(append(append([]byte(Magic), hdr[:]...), state...))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if f, derr := os.Open(l.dir); derr == nil {
		f.Sync() // make the rename itself durable
		f.Close()
	}

	// Only now is it safe to drop the superseded files.
	l.mu.Lock()
	defer l.mu.Unlock()
	oldSnap := l.snapSeq
	l.snapSeq = snapSeq
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s <= snapSeq {
			os.Remove(l.segPath(s))
		} else {
			kept = append(kept, s)
		}
	}
	l.segs = kept
	if oldSnap > 0 && oldSnap != snapSeq {
		os.Remove(l.snapPath(oldSnap))
	}
	return nil
}

// Replay streams the durable state: snapshot (if any) first, then
// every surviving record in append order. It reads from disk
// independently of the append path, so it can run on a freshly Opened
// log before any writes. fn receiving a snapshot gets isSnapshot=true
// exactly once, as the first call.
func (l *Log) Replay(fn func(payload []byte, isSnapshot bool) error) error {
	l.mu.Lock()
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	snapSeq := l.snapSeq
	segs := append([]uint64(nil), l.segs...)
	l.mu.Unlock()

	if snapSeq > 0 {
		state, err := readSnapshot(l.snapPath(snapSeq))
		if err != nil {
			return fmt.Errorf("wal: snapshot %d: %w", snapSeq, err)
		}
		if err := fn(state, true); err != nil {
			return err
		}
	}
	for i, seq := range segs {
		if seq <= snapSeq {
			continue
		}
		last := i == len(segs)-1
		valid, err := scanSegment(l.segPath(seq), func(rec []byte) error {
			return fn(rec, false)
		})
		if err != nil {
			return err
		}
		if !last {
			// A torn tail is only legal in the final segment: damage
			// here means records clients saw acknowledged are gone,
			// and replaying the suffix would resurrect a state that
			// never existed. Fail loudly instead.
			if fi, serr := os.Stat(l.segPath(seq)); serr == nil && valid != fi.Size() {
				return fmt.Errorf("wal: segment %d: interior corruption at offset %d: %w", seq, valid, ErrCorrupt)
			}
		}
	}
	return nil
}

// Status reports the log's current shape.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Dir:         l.dir,
		Segments:    len(l.segs),
		SnapshotSeq: l.snapSeq,
		LastSeq:     l.seq,
		Records:     l.records,
		Syncs:       l.syncs,
	}
	if len(l.segs) > 0 {
		st.FirstSeq = l.segs[0]
	}
	if !l.lastSync.IsZero() {
		st.LastSyncUnix = l.lastSync.Unix()
	}
	for _, s := range l.segs {
		if s == l.seq {
			st.LogBytes += l.size
		} else if fi, err := os.Stat(l.segPath(s)); err == nil {
			st.LogBytes += fi.Size()
		}
	}
	return st
}

// scanSegment walks a segment's records, calling fn (if non-nil) for
// each intact one, and returns the byte offset after the last intact
// record. Any invalid record — short header, impossible length,
// truncated payload, CRC mismatch — stops the scan *without error*:
// the returned offset is what openTail truncates to, and Replay
// decides from context whether an early stop is a legal torn tail
// (final segment) or interior corruption. A missing/garbled segment
// header is unconditionally ErrCorrupt: there is nothing salvageable.
func scanSegment(path string, fn func(rec []byte) error) (validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		// An empty or sub-header file is a crash during segment
		// creation with no records to lose: truncate to zero and
		// let openTail rewrite the header.
		if err == io.EOF {
			return 0, fmt.Errorf("wal: segment %s: empty: %w", path, ErrCorrupt)
		}
		return 0, fmt.Errorf("wal: segment %s: missing header: %w", path, ErrCorrupt)
	}
	if string(hdr) != Magic {
		return 0, fmt.Errorf("wal: segment %s: bad magic %q: %w", path, hdr, ErrCorrupt)
	}
	valid := int64(segHeaderSize)
	var rh [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			return valid, nil // clean end (EOF) or partial header
		}
		n := binary.BigEndian.Uint32(rh[0:4])
		want := binary.BigEndian.Uint32(rh[4:8])
		if n > maxRecordSize {
			return valid, nil // garbage length: torn tail
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(f, rec); err != nil {
			return valid, nil // partial payload: torn tail
		}
		if crc32.ChecksumIEEE(rec) != want {
			return valid, nil // garbled payload: torn tail
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return valid, err
			}
		}
		valid += int64(recHeaderSize + n)
	}
}

// readSnapshot loads and verifies a snapshot file.
func readSnapshot(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < segHeaderSize+recHeaderSize || string(b[:segHeaderSize]) != Magic {
		return nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(b[segHeaderSize : segHeaderSize+4])
	want := binary.BigEndian.Uint32(b[segHeaderSize+4 : segHeaderSize+8])
	state := b[segHeaderSize+recHeaderSize:]
	if uint32(len(state)) != n || crc32.ChecksumIEEE(state) != want {
		return nil, ErrCorrupt
	}
	return state, nil
}
