package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func replayAll(t *testing.T, l *Log) (snap []byte, recs [][]byte) {
	t.Helper()
	err := l.Replay(func(p []byte, isSnap bool) error {
		cp := append([]byte(nil), p...)
		if isSnap {
			if snap != nil || len(recs) > 0 {
				t.Fatal("snapshot not delivered first / delivered twice")
			}
			snap = cp
		} else {
			recs = append(recs, cp)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return snap, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap, recs := replayAll(t, l2)
	if snap != nil {
		t.Errorf("unexpected snapshot")
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 20; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Status()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, recs := replayAll(t, l2)
	if len(recs) != 20 {
		t.Errorf("replayed %d records across segments, want 20", len(recs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("intact-1"))
	l.Append([]byte("intact-2"))
	l.Close()

	// Simulate a crash mid-append: a full header promising 100 bytes
	// followed by only 10.
	path := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 100)
	binary.BigEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	f.Write(hdr[:])
	f.Write([]byte("only10byte"))
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	_, recs := replayAll(t, l2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
	}
	// And the log must be appendable right where the tear was cut.
	if err := l2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	_, recs = replayAll(t, l3)
	if len(recs) != 3 || !bytes.Equal(recs[2], []byte("post-crash")) {
		t.Errorf("after truncate+append, records = %q", recs)
	}
}

func TestTornCRCTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append([]byte("good"))
	l.Close()

	// A record whose payload was only partly flushed: right length,
	// wrong bytes → CRC mismatch.
	path := filepath.Join(dir, "wal-00000001.seg")
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	payload := []byte("garbled-payload")
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE([]byte("what-was-meant1")))
	f.Write(hdr[:])
	f.Write(payload)
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over crc-torn tail: %v", err)
	}
	defer l2.Close()
	_, recs := replayAll(t, l2)
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("good")) {
		t.Errorf("records = %q, want just the intact one", recs)
	}
}

func TestInteriorCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		l.Append(bytes.Repeat([]byte{byte('a' + i)}, 32))
	}
	l.Close()

	// Flip a payload byte in the FIRST segment (not the tail).
	path := filepath.Join(dir, "wal-00000001.seg")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)

	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func(p []byte, isSnap bool) error { return nil })
	if err == nil {
		t.Fatal("replay over interior corruption succeeded; acknowledged records were silently dropped")
	}
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(bytes.Repeat([]byte("s"), 48))
	}
	before := l.Status()
	if before.Segments < 2 {
		t.Fatalf("want multiple segments before snapshot, got %d", before.Segments)
	}
	if err := l.SaveSnapshot([]byte("STATE-AT-10")); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("after-snap"))
	after := l.Status()
	if after.Segments != 1 {
		t.Errorf("segments after compaction = %d, want 1", after.Segments)
	}
	if after.SnapshotSeq == 0 {
		t.Error("snapshot sequence not recorded")
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap, recs := replayAll(t, l2)
	if string(snap) != "STATE-AT-10" {
		t.Errorf("snapshot = %q", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "after-snap" {
		t.Errorf("post-snapshot records = %q", recs)
	}
}

func TestSecondSnapshotDropsFirst(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("a"))
	if err := l.SaveSnapshot([]byte("S1")); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("b"))
	if err := l.SaveSnapshot([]byte("S2")); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	snaps := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".snap" {
			snaps++
		}
	}
	if snaps != 1 {
		t.Errorf("%d snapshot files on disk, want 1", snaps)
	}
	snap, recs := replayAll(t, l)
	if string(snap) != "S2" || len(recs) != 0 {
		t.Errorf("replay = snap %q + %d records, want S2 + 0", snap, len(recs))
	}
}

func TestSyncIntervalFlushesLazily(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("lazy")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := l.Status(); st.LastSyncUnix != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAppendSyncForcesDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("unsynced"))
	if err := l.AppendSync([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if st := l.Status(); st.LastSyncUnix == 0 {
		t.Error("AppendSync did not fsync despite interval policy")
	}
}

func TestReplayEmptyLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	snap, recs := replayAll(t, l)
	if snap != nil || len(recs) != 0 {
		t.Errorf("fresh log replayed snap=%q recs=%d", snap, len(recs))
	}
}

func TestStatusCounts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("r%d", i)))
	}
	st := l.Status()
	if st.Records != 5 {
		t.Errorf("Records = %d, want 5", st.Records)
	}
	if st.Dir != dir || st.Segments != 1 || st.LastSeq != 1 {
		t.Errorf("status = %+v", st)
	}
	if st.LogBytes <= 8 {
		t.Errorf("LogBytes = %d, want > header", st.LogBytes)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, recs := replayAll(t, l2)
	if len(recs) != writers*each {
		t.Errorf("replayed %d records, want %d", len(recs), writers*each)
	}
}
