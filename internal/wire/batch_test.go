package wire

import (
	"bytes"
	"testing"
)

func TestKVSliceRoundTrip(t *testing.T) {
	kvs := []KV{
		{Key: "t1/4/0/64", Val: []byte("left")},
		{Key: "t1/4/64/64", Val: nil},
		{Key: "", Val: []byte{0, 1, 2, 3}},
	}
	b := NewBuffer(0)
	b.KVSlice(kvs)
	r := NewReader(b.Bytes())
	got := r.KVSlice()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kvs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(kvs))
	}
	for i := range kvs {
		if got[i].Key != kvs[i].Key || !bytes.Equal(got[i].Val, kvs[i].Val) {
			t.Errorf("pair %d = %q/%q, want %q/%q", i, got[i].Key, got[i].Val, kvs[i].Key, kvs[i].Val)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("%d trailing bytes", r.Remaining())
	}
}

func TestKVSliceEmpty(t *testing.T) {
	b := NewBuffer(0)
	b.KVSlice(nil)
	r := NewReader(b.Bytes())
	if got := r.KVSlice(); len(got) != 0 || r.Err() != nil {
		t.Errorf("empty slice = %v, %v", got, r.Err())
	}
}

func TestKVSliceRejectsAbsurdCount(t *testing.T) {
	// A corrupt count far beyond what the body could hold must fail
	// instead of allocating.
	b := NewBuffer(0)
	b.U32(1 << 30)
	r := NewReader(b.Bytes())
	if got := r.KVSlice(); got != nil || r.Err() == nil {
		t.Errorf("absurd count decoded: %v, err=%v", got, r.Err())
	}
}

func TestKVSliceTruncated(t *testing.T) {
	b := NewBuffer(0)
	b.KVSlice([]KV{{Key: "k", Val: []byte("value")}})
	enc := b.Bytes()
	r := NewReader(enc[:len(enc)-2])
	if got := r.KVSlice(); got != nil || r.Err() == nil {
		t.Error("truncated KVSlice decoded")
	}
}
