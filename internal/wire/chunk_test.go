package wire

import (
	"bytes"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	chunks := []Chunk{
		{Off: 0, Total: 10, Data: []byte("01234")},
		{Off: 5, Total: 10, Data: []byte("56789")},
		{Off: 0, Total: 1, Data: []byte("x")},
	}
	wantLast := []bool{false, true, true}
	b := NewBuffer(64)
	for _, c := range chunks {
		b.Chunk(c)
	}
	r := NewReader(b.Bytes())
	for i, want := range chunks {
		got := r.Chunk()
		if got.Off != want.Off || got.Total != want.Total ||
			!bytes.Equal(got.Data, want.Data) {
			t.Errorf("chunk %d = %+v, want %+v", i, got, want)
		}
		if got.Last() != wantLast[i] {
			t.Errorf("chunk %d Last() = %v, want %v", i, got.Last(), wantLast[i])
		}
	}
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestChunkTruncated(t *testing.T) {
	b := NewBuffer(32)
	b.Chunk(Chunk{Off: 0, Total: 4, Data: []byte("full")})
	enc := b.Bytes()
	for cut := 1; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		r.Chunk()
		if r.Err() == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
