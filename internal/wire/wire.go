// Package wire implements the binary encoding used by every daemon in
// the reproduction: a sticky-error buffer codec for message bodies and
// length-prefixed framing for the transport. Hand-rolled encoding keeps
// the data path allocation-light and dependency-free (stdlib only).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrFrameTooLarge is returned when an incoming frame exceeds the
// reader's configured limit (protects daemons from corrupt peers).
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrShortBuffer is returned when decoding runs past the end of a
// message body.
var ErrShortBuffer = errors.New("wire: short buffer")

// MaxFrameSize is the default frame limit: one 64 MB block plus
// generous protocol overhead.
const MaxFrameSize = 80 << 20

// Buffer encodes a message body. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer { return &Buffer{b: make([]byte, 0, capacity)} }

// Bytes returns the encoded body.
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset clears the buffer for reuse.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// U8 appends a byte.
func (e *Buffer) U8(v uint8) { e.b = append(e.b, v) }

// U16 appends a big-endian uint16.
func (e *Buffer) U16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }

// U32 appends a big-endian uint32.
func (e *Buffer) U32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }

// U64 appends a big-endian uint64.
func (e *Buffer) U64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }

// I64 appends a big-endian int64 (two's complement).
func (e *Buffer) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (e *Buffer) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Buffer) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a length-prefixed (u32) byte slice.
func (e *Buffer) Bytes32(v []byte) {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// String appends a length-prefixed (u32) string.
func (e *Buffer) String(v string) {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// StringSlice appends a u32 count followed by each string.
func (e *Buffer) StringSlice(vs []string) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.String(v)
	}
}

// KV is one key/value pair of a batched message. Batch RPCs (the
// metadata DHT's multi-put) frame their payload as a KVSlice instead of
// one message per pair, so a whole tree level travels in one frame.
type KV struct {
	Key string
	Val []byte
}

// KVSlice appends a u32 count followed by each pair (key then value,
// both length-prefixed).
func (e *Buffer) KVSlice(kvs []KV) {
	e.U32(uint32(len(kvs)))
	for _, kv := range kvs {
		e.String(kv.Key)
		e.Bytes32(kv.Val)
	}
}

// Chunk is one frame of a chunked streaming transfer: a piece of a
// larger value, addressed by its byte offset within that value. The
// data plane streams blocks to providers as a sequence of chunks so a
// block never has to travel as one monolithic RPC payload — each hop of
// a replication chain can persist a chunk and forward it downstream
// while later chunks are still in flight. Chunks are self-describing
// (every frame carries the total length), so they may be applied in any
// arrival order; a transfer is complete when Total bytes have landed.
type Chunk struct {
	Off   int64  // byte offset of this frame within the value
	Total int64  // total length of the value being streamed
	Data  []byte // frame payload
}

// Last reports whether the chunk covers the value's final byte.
func (c Chunk) Last() bool { return c.Off+int64(len(c.Data)) == c.Total }

// Chunk appends one streaming frame.
func (e *Buffer) Chunk(c Chunk) {
	e.I64(c.Off)
	e.I64(c.Total)
	e.Bytes32(c.Data)
}

// Reader decodes a message body. Decoding errors are sticky: once a
// read fails, all subsequent reads return zero values and Err() reports
// the first failure. This keeps decoder call sites linear and readable.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over body.
func NewReader(body []byte) *Reader { return &Reader{b: body} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 reads a length-prefixed byte slice. The returned slice
// aliases the underlying body; callers that retain it must copy.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining() {
		r.fail()
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// StringSlice reads a u32 count followed by each string.
func (r *Reader) StringSlice() []string {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining()/4+1 { // each string needs >= 4 prefix bytes
		r.fail()
		return nil
	}
	vs := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		vs = append(vs, r.String())
		if r.err != nil {
			return nil
		}
	}
	return vs
}

// KVSlice reads a u32 count followed by each key/value pair. Values
// alias the underlying body; callers that retain them must copy.
func (r *Reader) KVSlice() []KV {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining()/8+1 { // each pair needs >= 8 prefix bytes
		r.fail()
		return nil
	}
	kvs := make([]KV, 0, n)
	for i := uint32(0); i < n; i++ {
		kvs = append(kvs, KV{Key: r.String(), Val: r.Bytes32()})
		if r.err != nil {
			return nil
		}
	}
	return kvs
}

// Chunk reads one streaming frame. The data aliases the underlying
// body; callers that retain it must copy.
func (r *Reader) Chunk() Chunk {
	return Chunk{
		Off:   r.I64(),
		Total: r.I64(),
		Data:  r.Bytes32(),
	}
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r, enforcing limit
// (MaxFrameSize if limit <= 0).
func ReadFrame(r io.Reader, limit int) ([]byte, error) {
	if limit <= 0 {
		limit = MaxFrameSize
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > limit {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return body, nil
}
