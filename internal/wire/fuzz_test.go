package wire

import (
	"bytes"
	"testing"
)

// FuzzReaderRobust feeds arbitrary bytes through every decoder: the
// Reader must never panic or allocate absurdly — malformed peers can
// send anything, and RPC handlers decode before validating.
func FuzzReaderRobust(f *testing.F) {
	good := NewBuffer(64)
	good.U8(1)
	good.U32(7)
	good.String("hello")
	good.StringSlice([]string{"a", "bb"})
	good.Bytes32([]byte{1, 2, 3})
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x7f}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.U64()
		_ = r.I64()
		_ = r.F64()
		_ = r.Bool()
		_ = r.Bytes32()
		_ = r.String()
		_ = r.StringSlice()
		// After any failure, further reads must keep returning zero
		// values without panicking, and Err must be sticky.
		if r.Err() != nil {
			if v := r.U64(); v != 0 {
				t.Fatalf("read after error returned %d, want 0", v)
			}
			if s := r.String(); s != "" {
				t.Fatalf("read after error returned %q, want empty", s)
			}
			if r.Err() == nil {
				t.Fatal("error was not sticky")
			}
		}
	})
}

// FuzzFrameRoundTrip checks the length-prefixed framing: every body
// written must read back identically, and corrupt prefixes must fail
// without huge allocations (the limit guards them).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, body); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf, len(body)+16)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, body) {
			t.Fatal("frame body mismatch")
		}
		// A frame advertising more than the limit must be rejected.
		var big bytes.Buffer
		if err := WriteFrame(&big, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrame(&big, 8); err == nil {
			t.Fatal("oversized frame accepted")
		}
	})
}
