package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	b := NewBuffer(64)
	b.U8(0xab)
	b.U16(0xcdef)
	b.U32(0xdeadbeef)
	b.U64(0x0123456789abcdef)
	b.I64(-42)
	b.F64(math.Pi)
	b.Bool(true)
	b.Bool(false)

	r := NewReader(b.Bytes())
	if v := r.U8(); v != 0xab {
		t.Errorf("U8 = %x", v)
	}
	if v := r.U16(); v != 0xcdef {
		t.Errorf("U16 = %x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := r.U64(); v != 0x0123456789abcdef {
		t.Errorf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if r.Err() != nil {
		t.Errorf("unexpected decode error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripBytesAndStrings(t *testing.T) {
	b := &Buffer{}
	b.Bytes32([]byte("hello"))
	b.String("wörld")
	b.StringSlice([]string{"a", "", "ccc"})
	b.Bytes32(nil)

	r := NewReader(b.Bytes())
	if got := string(r.Bytes32()); got != "hello" {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.String(); got != "wörld" {
		t.Errorf("String = %q", got)
	}
	ss := r.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("StringSlice = %v", ss)
	}
	if got := r.Bytes32(); len(got) != 0 {
		t.Errorf("empty Bytes32 = %v", got)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32() // short
	if r.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if v := r.U64(); v != 0 {
		t.Error("post-error read returned non-zero")
	}
	if s := r.String(); s != "" {
		t.Error("post-error string not empty")
	}
}

func TestBytes32Truncated(t *testing.T) {
	b := &Buffer{}
	b.U32(100) // claims 100 bytes, provides none
	r := NewReader(b.Bytes())
	if got := r.Bytes32(); got != nil || r.Err() == nil {
		t.Error("truncated Bytes32 not detected")
	}
}

func TestStringSliceBogusCount(t *testing.T) {
	b := &Buffer{}
	b.U32(0xffffffff)
	r := NewReader(b.Bytes())
	if ss := r.StringSlice(); ss != nil || r.Err() == nil {
		t.Error("bogus count not rejected")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("some frame body")
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("frame = %q", got)
	}
}

func TestFrameEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("frame = %v", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameShortRead(t *testing.T) {
	// Header promises more bytes than present.
	r := bytes.NewReader([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadFrame(r, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
}

func TestFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(8)
	b.U64(1)
	if b.Len() != 8 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(a uint64, bs []byte, s string, fl float64, tf bool) bool {
		e := &Buffer{}
		e.U64(a)
		e.Bytes32(bs)
		e.String(s)
		e.F64(fl)
		e.Bool(tf)
		r := NewReader(e.Bytes())
		ga := r.U64()
		gb := r.Bytes32()
		gs := r.String()
		gf := r.F64()
		gt := r.Bool()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		sameF := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return ga == a && bytes.Equal(gb, bs) && gs == s && sameF && gt == tf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
