// Command blobseerd launches one BlobSeer (or baseline HDFS) daemon on
// a TCP endpoint. A full deployment is a set of blobseerd processes,
// one per role — exactly the process inventory of the paper's Figure 2:
//
//	blobseerd -role meta      -listen 127.0.0.1:7101
//	blobseerd -role meta      -listen 127.0.0.1:7102
//	blobseerd -role vmanager  -listen 127.0.0.1:7001 -meta 127.0.0.1:7101,127.0.0.1:7102
//	blobseerd -role pmanager  -listen 127.0.0.1:7002 -strategy roundrobin
//	blobseerd -role namespace -listen 127.0.0.1:7003 -vmanager 127.0.0.1:7001
//	blobseerd -role provider  -listen 127.0.0.1:7201 -pmanager 127.0.0.1:7002 -host host-0
//	blobseerd -role provider  -listen 127.0.0.1:7202 -pmanager 127.0.0.1:7002 -host host-1
//
// The version manager can be sharded K ways: start K vmanager daemons,
// each with -shard k/K (shard k then owns the blob IDs congruent to k
// mod K and keeps its own WAL), and hand every consumer the full
// comma-separated shard list in shard order:
//
//	blobseerd -role vmanager  -listen 127.0.0.1:7001 -shard 0/2 -meta ...
//	blobseerd -role vmanager  -listen 127.0.0.1:7011 -shard 1/2 -meta ...
//	blobseerd -role namespace -listen 127.0.0.1:7003 -vmanager 127.0.0.1:7001,127.0.0.1:7011
//
// The self-healing plane adds two moving parts: providers heartbeat
// their store statistics to the provider manager (-heartbeat), which
// expires silent ones (-expire-after), and a repair daemon restores
// replication after provider loss:
//
//	blobseerd -role pmanager -listen 127.0.0.1:7002 -expire-after 15s
//	blobseerd -role repair   -vmanager 127.0.0.1:7001 -pmanager 127.0.0.1:7002 \
//	          -meta 127.0.0.1:7101,127.0.0.1:7102 -repair-interval 30s
//
// The baseline file system uses the namenode/datanode roles instead:
//
//	blobseerd -role namenode -listen 127.0.0.1:8001 -block-size 67108864
//	blobseerd -role datanode -listen 127.0.0.1:8201 -namenode 127.0.0.1:8001 -host host-0
//
// Block payloads live in memory by default; pass -store to select any
// backend by URL — "file:///var/blocks?sync=1" for a file-backed store,
// "http://peer:9000/base" for a remote object server, or
// "tiered://?hot=mem://&cold=file:///var/blocks" for the hot/cold
// tiered engine (see the store package for the policy knobs). The old
// -dir/-sync flags remain as deprecated aliases for the file:// form.
// The control-plane daemons (vmanager, namespace) are volatile by
// default; pass -data-dir to journal every mutation to a write-ahead
// log and recover the state on restart (-wal-sync trades durability for
// throughput by batching fsyncs). SIGTERM flushes and closes the log
// before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"blobseer/internal/dht"
	"blobseer/internal/hdfs"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/namespace"
	"blobseer/internal/placement"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/repair"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/trace"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
)

func main() {
	var (
		role     = flag.String("role", "", "daemon role: vmanager | pmanager | provider | meta | namespace | repair | namenode | datanode")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		metas    = flag.String("meta", "", "comma-separated metadata provider addresses (vmanager: abort repair; required for -role vmanager unless -no-repair)")
		metaRepl = flag.Int("meta-replication", 1, "DHT replication level (vmanager repair path)")
		metaCach = flag.Int("meta-cache", 0, "vmanager: immutable-node cache entries for the repair store (<0 default, 0 off)")
		noRepair = flag.Bool("no-repair", false, "vmanager: disable metadata abort repair")
		shard    = flag.String("shard", "", "vmanager: shard identity k/K (e.g. 0/4); empty = unsharded")
		vmAddr   = flag.String("vmanager", "", "version manager address, comma-separated shard list when sharded (namespace/repair roles)")
		pmAddr   = flag.String("pmanager", "", "provider manager address (provider role; registers at startup)")
		nnAddr   = flag.String("namenode", "", "namenode address (datanode role; registers at startup)")
		host     = flag.String("host", "", "physical host label exposed for affinity scheduling (provider/datanode)")
		storeURL = flag.String("store", "", "block-store backend URL: mem:// | file:///path?sync=1 | http://peer/base | tiered://?hot=...&cold=... (default: mem://)")
		dir      = flag.String("dir", "", "deprecated alias for -store file://<dir>")
		syncW    = flag.Bool("sync", false, "deprecated: with -dir, alias for the ?sync=1 store option")
		strategy = flag.String("strategy", "roundrobin", "placement strategy: roundrobin | random | sticky | leastloaded (pmanager/namenode)")
		seed     = flag.Uint64("seed", 1, "placement RNG seed (random/sticky)")
		stickyW  = flag.Int("sticky-window", 8, "sticky placement window (namenode's HDFS-0.20-like clustering)")
		blockSz  = flag.Int64("block-size", 64*util.MB, "chunk size in bytes (namenode)")
		wtimeout = flag.Duration("write-timeout", 0, "vmanager: abort writers silent for this long (0 disables the janitor)")
		dataDir  = flag.String("data-dir", "", "vmanager/namespace: WAL directory for crash-durable state (default: volatile)")
		walSync  = flag.Duration("wal-sync", 0, "vmanager/namespace: fsync the WAL at this interval instead of per record (0 = every record)")
		hbEvery  = flag.Duration("heartbeat", 5*time.Second, "provider: heartbeat interval to the provider manager (0 disables)")
		expire   = flag.Duration("expire-after", 0, "pmanager: mark providers silent this long dead (0 disables the liveness loop)")
		repEvery = flag.Duration("repair-interval", 30*time.Second, "repair: scan-and-repair period")
		repConc  = flag.Int("repair-concurrency", 0, "repair: parallel block repairs (0 = default)")
		metAddr  = flag.String("metrics-addr", "", "HTTP address serving this daemon's /metrics and /trace (\"127.0.0.1:0\" picks a port; empty disables)")
		trSample = flag.Float64("trace-sample", 0, "probability [0,1] that a request with no inbound trace context starts a sampled trace")
		trSlow   = flag.Duration("trace-slow", 0, "force-sample any root operation slower than this (0 disables slow-root capture)")
		trBuf    = flag.Int("trace-buf", 0, "per-daemon span ring capacity (0 = default)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("blobseerd: ")

	if *role == "" {
		fmt.Fprintln(os.Stderr, "blobseerd: -role is required")
		flag.Usage()
		os.Exit(2)
	}

	newStore := func() store.Store {
		u := *storeURL
		switch {
		case u == "" && *dir == "":
			u = "mem://"
		case u == "":
			// Deprecated -dir/-sync spelling maps onto the URL form.
			fu := url.URL{Scheme: "file", Path: *dir}
			if !filepath.IsAbs(*dir) {
				fu = url.URL{Scheme: "file", Opaque: *dir}
			}
			if *syncW {
				fu.RawQuery = "sync=1"
			}
			u = fu.String()
			log.Printf("-dir is deprecated; use -store %s", u)
		case *dir != "":
			log.Fatalf("-store and -dir are mutually exclusive (use -store %s)", u)
		}
		st, err := store.Open(u)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		return st
	}
	// openWAL opens the role's record log under -data-dir (nil without
	// one: the daemon runs volatile, the pre-durability behavior).
	openWAL := func(role string) *wal.Log {
		if *dataDir == "" {
			return nil
		}
		opts := wal.Options{Policy: wal.SyncAlways}
		if *walSync > 0 {
			opts = wal.Options{Policy: wal.SyncInterval, Interval: *walSync}
		}
		log_, err := wal.Open(filepath.Join(*dataDir, role), opts)
		if err != nil {
			log.Fatalf("open WAL under %s: %v", *dataDir, err)
		}
		return log_
	}
	// tracer is this daemon's span recorder. Rate 0 (the default)
	// records only requests that arrive already carrying a sampled
	// trace context, so an untraced deployment pays the no-op path.
	tracer := trace.New(*role, *trBuf)
	tracer.SetSampling(*trSample, *trSlow)
	traceExp := trace.NewExporter()
	traceExp.Register(tracer)
	// serveMetrics exports one service registry (and the daemon's trace
	// buffer at /trace) over HTTP when -metrics-addr is set; it returns
	// the listener's stop function (nil when the listener is off).
	serveMetrics := func(name string, reg *metrics.Registry) func() error {
		if *metAddr == "" {
			return nil
		}
		exp := metrics.NewExporter()
		exp.Register(name, reg) // nil registries are ignored
		hmux := http.NewServeMux()
		hmux.Handle("/metrics", exp)
		hmux.Handle("/", exp)
		hmux.Handle("/trace", traceExp)
		bound, stop, err := metrics.ServeHandler(*metAddr, hmux)
		if err != nil {
			log.Fatalf("metrics listener on %s: %v", *metAddr, err)
		}
		log.Printf("metrics on http://%s/metrics (traces at /trace)", bound)
		return stop
	}
	newStrategy := func() placement.Strategy {
		switch *strategy {
		case "roundrobin":
			return placement.NewRoundRobin()
		case "random":
			return placement.NewRandom(*seed)
		case "sticky":
			return placement.NewRandomSticky(*stickyW, *seed)
		case "leastloaded":
			return placement.NewLeastLoaded()
		default:
			log.Fatalf("unknown strategy %q", *strategy)
			return nil
		}
	}

	// The repair daemon serves no RPC: it is a pure client of the
	// version manager, provider manager, metadata DHT and providers,
	// looping scan-and-repair until stopped.
	if *role == "repair" {
		if *vmAddr == "" || *pmAddr == "" || *metas == "" {
			log.Fatal("repair: -vmanager, -pmanager and -meta are required")
		}
		if *repEvery <= 0 {
			log.Fatal("repair: -repair-interval must be positive")
		}
		pool := rpc.NewPool(rpc.TCPDialer)
		ring := dht.NewRing(splitAddrs(*metas), dht.DefaultVnodes)
		dhtClient := dht.NewClient(ring, pool, *metaRepl)
		eng := repair.New(repair.Config{
			VM:          vmClient(pool, *vmAddr),
			PM:          pmanager.NewClient(pool, *pmAddr),
			Prov:        provider.NewClient(pool),
			Meta:        mdtree.MaybeCache(mdtree.NewDHTStore(dhtClient), *metaCach),
			Overlay:     repair.NewOverlay(dhtClient),
			Concurrency: *repConc,
		})
		eng.Start(*repEvery)
		log.Printf("repair loop running (every %s)", *repEvery)
		stopM := serveMetrics("repair", eng.Metrics())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		eng.Stop()
		if stopM != nil {
			_ = stopM()
		}
		return
	}

	var (
		mux     *rpc.Mux
		cleanup func()
		provSvc *provider.Service
		mreg    *metrics.Registry   // the role's registry for -metrics-addr
		opName  func(uint16) string // method-id -> span op name for this role
	)
	switch *role {
	case "meta":
		svc := dht.NewMetaService(newStore())
		mreg = svc.Metrics()
		mux = svc.Mux()
		opName = dht.MethodName

	case "vmanager":
		var repair vmanager.Repairer
		if !*noRepair {
			if *metas == "" {
				log.Fatal("vmanager: -meta is required (or pass -no-repair)")
			}
			ring := dht.NewRing(splitAddrs(*metas), dht.DefaultVnodes)
			pool := rpc.NewPool(rpc.TCPDialer)
			st := mdtree.MaybeCache(mdtree.NewDHTStore(dht.NewClient(ring, pool, *metaRepl)), *metaCach)
			repair = vmanager.MetadataRepairer(st)
		}
		si := parseShard(*shard)
		walName := "vmanager"
		if si.Count > 1 {
			// One WAL per shard: kill/restart/recovery never crosses
			// shard boundaries.
			walName = filepath.Join("vmanager", fmt.Sprintf("shard-%d", si.Index))
		}
		var state *vmanager.State
		if l := openWAL(walName); l != nil {
			var err error
			if state, err = vmanager.RecoverShard(l, repair, si); err != nil {
				log.Fatalf("vmanager: recover from WAL: %v", err)
			}
			st := l.Status()
			log.Printf("vmanager: shard %d/%d recovered from WAL (%d segment(s), %d bytes)", si.Index, si.Count, st.Segments, st.LogBytes)
		} else {
			state = vmanager.NewShardState(repair, si)
		}
		svc := vmanager.NewService(state)
		if *wtimeout > 0 {
			svc.StartJanitor(*wtimeout, *wtimeout/2)
		}
		cleanup = func() {
			// Graceful shutdown: release parked waiters, stop the
			// janitor, flush and close the WAL.
			if *wtimeout > 0 {
				svc.StopJanitor()
			}
			state.ReleaseWaiters()
			if err := state.CloseWAL(); err != nil {
				log.Printf("vmanager: close WAL: %v", err)
			}
		}
		mreg = svc.Metrics()
		mux = svc.Mux()
		opName = vmanager.MethodName

	case "pmanager":
		svc := pmanager.NewService(pmanager.NewState(newStrategy()))
		if *expire > 0 {
			svc.StartExpiry(*expire, *expire/2)
			cleanup = svc.StopExpiry
		}
		mreg = svc.Metrics()
		mux = svc.Mux()
		opName = pmanager.MethodName

	case "namespace":
		if *vmAddr == "" {
			log.Fatal("namespace: -vmanager is required")
		}
		pool := rpc.NewPool(rpc.TCPDialer)
		creator := namespace.VMBlobCreator(vmClient(pool, *vmAddr))
		var state *namespace.State
		if l := openWAL("namespace"); l != nil {
			var err error
			if state, err = namespace.Recover(l, creator); err != nil {
				log.Fatalf("namespace: recover from WAL: %v", err)
			}
			st := l.Status()
			log.Printf("namespace: recovered from WAL (%d segment(s), %d bytes)", st.Segments, st.LogBytes)
		} else {
			state = namespace.NewState(creator)
		}
		cleanup = func() {
			if err := state.CloseWAL(); err != nil {
				log.Printf("namespace: close WAL: %v", err)
			}
		}
		nsSvc := namespace.NewService(state)
		mreg = nsSvc.Metrics()
		mux = nsSvc.Mux()
		opName = namespace.MethodName

	case "provider":
		// Providers forward chain frames to downstream replicas over
		// their own TCP pool.
		provSvc = provider.NewService(newStore(), provider.WithForwarder(rpc.NewPool(rpc.TCPDialer)))
		mreg = provSvc.Metrics()
		mux = provSvc.Mux()
		opName = provider.MethodName

	case "datanode":
		dnSvc := provider.NewService(newStore())
		mreg = dnSvc.Metrics()
		mux = dnSvc.Mux()
		opName = provider.MethodName

	case "namenode":
		mux = hdfs.NewService(hdfs.NewNamenode(*blockSz, newStrategy())).Mux()

	default:
		log.Fatalf("unknown role %q", *role)
	}

	lis, err := rpc.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	addr := lis.Addr().String()
	srv := rpc.NewServer(mux)
	srv.SetTrace(tracer, opName)
	go func() {
		if err := srv.Serve(lis); err != nil {
			log.Printf("serve: %v", err)
		}
	}()
	log.Printf("%s listening on %s", *role, addr)
	stopM := serveMetrics(*role, mreg)

	// Storage daemons announce themselves to their manager so clients
	// can be pointed at the manager alone.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	switch *role {
	case "provider":
		if *pmAddr == "" {
			log.Fatal("provider: -pmanager is required")
		}
		pool := rpc.NewPool(rpc.TCPDialer)
		pm := pmanager.NewClient(pool, *pmAddr)
		if err := pm.Register(ctx, addr, *host); err != nil {
			log.Fatalf("register with provider manager %s: %v", *pmAddr, err)
		}
		log.Printf("registered with provider manager %s as host %q", *pmAddr, *host)
		if *hbEvery > 0 {
			// The liveness loop: heartbeats carry live store statistics
			// so the manager's listings track what the provider actually
			// holds, and going silent for the manager's expiry window
			// drops this provider from the allocation pool.
			go func() {
				t := time.NewTicker(*hbEvery)
				defer t.Stop()
				for range t.C {
					hctx, cancel := context.WithTimeout(context.Background(), *hbEvery)
					known, err := pm.Heartbeat(hctx, addr, provSvc.Store().Stats())
					switch {
					case err != nil:
						log.Printf("heartbeat to %s: %v", *pmAddr, err)
					case !known:
						// The manager restarted and lost its membership:
						// re-register so the allocation pool recovers
						// without restarting every provider.
						if err := pm.Register(hctx, addr, *host); err != nil {
							log.Printf("re-register with %s: %v", *pmAddr, err)
						} else {
							log.Printf("re-registered with provider manager %s", *pmAddr)
						}
					}
					cancel()
				}
			}()
		}
	case "datanode":
		if *nnAddr == "" {
			log.Fatal("datanode: -namenode is required")
		}
		pool := rpc.NewPool(rpc.TCPDialer)
		if err := hdfs.NewNNClient(pool, *nnAddr).Register(ctx, addr, *host); err != nil {
			log.Fatalf("register with namenode %s: %v", *nnAddr, err)
		}
		log.Printf("registered with namenode %s as host %q", *nnAddr, *host)
	}
	cancel()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if cleanup != nil {
		cleanup()
	}
	if stopM != nil {
		_ = stopM()
	}
	srv.Close()
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// vmClient turns a -vmanager flag value (one address, or the full
// comma-separated shard list in shard order) into the matching client.
func vmClient(pool *rpc.Pool, flagVal string) vmanager.API {
	addrs := splitAddrs(flagVal)
	if len(addrs) > 1 {
		return vmanager.NewRouter(pool, addrs)
	}
	return vmanager.NewClient(pool, addrs[0])
}

// parseShard parses -shard "k/K" into a ShardInfo ("" = unsharded).
func parseShard(s string) vmanager.ShardInfo {
	if s == "" {
		return vmanager.ShardInfo{}
	}
	var k, n int
	if c, err := fmt.Sscanf(s, "%d/%d", &k, &n); err != nil || c != 2 || n < 1 || k < 0 || k >= n {
		log.Fatalf("vmanager: bad -shard %q (want k/K with 0 <= k < K)", s)
	}
	return vmanager.ShardInfo{Index: k, Count: n}
}
