// Command figures regenerates the paper's evaluation figures (Section
// V) on the simulated Grid'5000 testbed and prints each series as a
// table. The flags select a figure and optionally shrink the sweep for
// a quick run:
//
//	figures                  # every figure, full sweeps
//	figures -fig 4           # only Figure 4
//	figures -fig 6b -quick   # Figure 6b, coarse sweep
//	figures -ablations       # the design-choice ablations of DESIGN.md
//	figures -vmshard         # control-plane sharding + group commit, BENCH_vmshard.json
//	figures -tiering         # hot/cold store tiering ablation, BENCH_tiering.json
//	figures -selftest        # live-stack sanity check before a long sweep
//
// Expected output shapes are documented in EXPERIMENTS.md; the shape
// regression tests live in internal/bench.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"blobseer"
	"blobseer/internal/bench"
)

// selftest deploys the real (in-process) stack and drives one
// handle-based round trip — CreateBlob, write-behind streaming,
// pinned-snapshot ReadAt — so a broken client surface fails fast
// instead of twenty minutes into a figure sweep.
func selftest() error {
	const block = 64 << 10
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: block})
	if err != nil {
		return err
	}
	defer cl.Stop()
	ctx := context.Background()
	b, err := cl.NewClient("").CreateBlob(ctx, block, 1)
	if err != nil {
		return err
	}
	payload := bytes.Repeat([]byte("figures-selftest "), 2*block/16)
	w := b.NewWriter(ctx, blobseer.WriterOptions{Depth: 2})
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	s, err := b.Latest(ctx)
	if err != nil {
		return err
	}
	back := make([]byte, s.Size())
	if _, err := s.ReadAt(back, 0); err != nil && err != io.EOF {
		return err
	}
	if !bytes.Equal(back, payload) {
		return fmt.Errorf("selftest: snapshot read mismatch (%d bytes)", len(back))
	}
	fmt.Printf("selftest ok: v%d, %d bytes round-tripped through Blob/Snapshot handles\n",
		s.Version(), s.Size())
	return nil
}

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 3a | 3b | 4 | 5 | 6a | 6b | all")
		quick     = flag.Bool("quick", false, "coarse sweeps (3 points per curve)")
		ablations = flag.Bool("ablations", false, "run the ablation experiments instead of the figures")
		recovery  = flag.Bool("recovery", false, "run the crash-recovery ablation and write BENCH_recovery.json")
		vmshard   = flag.Bool("vmshard", false, "run the control-plane sharding ablation and write BENCH_vmshard.json")
		tiering   = flag.Bool("tiering", false, "run the hot/cold store tiering ablation and write BENCH_tiering.json")
		check     = flag.Bool("selftest", false, "run a live-stack handle-API sanity check and exit")
	)
	flag.Parse()

	if *check {
		if err := selftest(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *recovery {
		r, err := bench.CrashRecoveryBench(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: recovery bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table("Crash recovery — publication-line durability (vmanager kill+restart)", r.Durability))
		fmt.Println(bench.Table("Crash recovery — cold replay time vs log length", r.RecoveryTime))
		fmt.Println(bench.Table("Crash recovery — fsync policy throughput cost", r.FsyncCost))
		if err := r.WriteJSON("BENCH_recovery.json"); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_recovery.json")
		return
	}

	if *vmshard {
		r, err := bench.VMShardScalingBench(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: vmshard bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table("Control-plane sharding — publish throughput vs shard count (8 writers)", r.ShardScaling))
		fmt.Println(bench.Table("WAL group commit — durable publish rate vs concurrent writers", r.GroupCommit))
		if err := r.WriteJSON("BENCH_vmshard.json"); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_vmshard.json")
		return
	}

	if *tiering {
		r, err := bench.TieringBenchRun(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: tiering bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table("Store tiering — read throughput per arm (fs baseline, tiered hot, cold+promote, promoted)", r.Throughput))
		fmt.Printf("hot_ratio=%.3f promoted_ratio=%.3f readable=%.3f demotions=%d promotions=%d\n",
			r.HotRatio, r.PromotedRatio, r.Readable, r.Demotions, r.Promotions)
		if err := r.WriteJSON("BENCH_tiering.json"); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_tiering.json")
		if err := r.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: tiering acceptance: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ablations {
		fmt.Println(bench.Table("Ablation — placement strategy (Fig-4 workload, 150 readers)",
			bench.AblationPlacement(150)))
		fmt.Println(bench.Table("Ablation — metadata providers (Fig-4 workload, 150 readers)",
			bench.AblationMetadataProviders(150, []int{1, 5, 10, 20})))
		fmt.Println(bench.Table("Ablation — version-manager service time (Fig-5 workload, 150 appenders)",
			bench.AblationVMService(150, []float64{0.5, 2, 10, 50})))
		fmt.Println(bench.Table("Ablation — block size (4 GB single writer)",
			bench.AblationBlockSize(4, []int{16, 32, 64, 128})))
		fmt.Println(bench.Table("Ablation — replication level (4 GB single writer)",
			bench.AblationReplication(4, []int{1, 2, 3})))
		fmt.Println(bench.Table("Ablation — self-healing repair (R=3, 64 blocks, 16 providers, kill 1 then 3)",
			bench.AblationRepair(64, 16)))
		return
	}

	var (
		gbs     = []float64{1, 2, 4, 6, 8, 10, 12, 14, 16}
		clients = []int{1, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250}
		mappers = []int{50, 25, 10, 5, 2, 1}
		inputs  = []float64{6.4, 8.0, 9.6, 11.2, 12.8}
	)
	if *quick {
		gbs = []float64{1, 8, 16}
		clients = []int{1, 100, 250}
		mappers = []int{50, 5, 1}
		inputs = []float64{6.4, 9.6, 12.8}
	}

	runs := []struct {
		id    string
		title string
		run   func() []bench.Series
	}{
		{"3a", "Figure 3(a) — single writer, single file: throughput vs file size", func() []bench.Series { return bench.Fig3a(gbs) }},
		{"3b", "Figure 3(b) — load balance: Manhattan distance to the ideal layout", func() []bench.Series { return bench.Fig3b(gbs) }},
		{"4", "Figure 4 — concurrent readers, shared file: per-client throughput", func() []bench.Series { return bench.Fig4(clients) }},
		{"5", "Figure 5 — concurrent appenders, shared file: aggregated throughput", func() []bench.Series { return bench.Fig5(clients) }},
		{"6a", "Figure 6(a) — RandomTextWriter: job completion time vs per-mapper output", func() []bench.Series { return bench.Fig6a(mappers) }},
		{"6b", "Figure 6(b) — distributed grep: job completion time vs input size", func() []bench.Series { return bench.Fig6b(inputs) }},
	}

	matched := false
	for _, r := range runs {
		if *fig != "all" && *fig != r.id {
			continue
		}
		matched = true
		fmt.Println(bench.Table(r.title, r.run()))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q (want 3a, 3b, 4, 5, 6a, 6b or all)\n", *fig)
		os.Exit(2)
	}
}
