// Command bsfsblaster drives a configurable open/read/write/append
// load against a BlobSeer deployment and reports sustained throughput,
// per-op latency percentiles and the error rate as BENCH_blaster.json.
//
// Simulated mode (the default) boots a whole in-process cluster and
// blasts it — a one-command load test of the full stack:
//
//	bsfsblaster -sim -workers 8 -duration 30s -metrics-addr 127.0.0.1:9100
//
// Real mode points the same engine at a running deployment (see
// cmd/blobseerd), exercising exactly the client stack Hadoop would:
//
//	bsfsblaster -sim=false -vmanager 127.0.0.1:7001 -pmanager 127.0.0.1:7002 \
//	            -namespace 127.0.0.1:7003 -meta 127.0.0.1:7101 -duration 60s
//
// -duration 0 selects long-run mode: the blaster runs until SIGINT or
// SIGTERM and measures the whole steady state. While a run is live,
// -metrics-addr serves /metrics with the blaster's own counters and
// histograms (plus, in simulated mode, every daemon of the embedded
// cluster) — `bsfsctl -metrics <addr> top` watches the rates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blobseer/internal/bench"
	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/dht"
	"blobseer/internal/fs"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/namespace"
	"blobseer/internal/rpc"
	"blobseer/internal/util"
)

func main() {
	var (
		sim      = flag.Bool("sim", true, "boot an in-process cluster and blast it (false: connect to a real deployment)")
		workers  = flag.Int("workers", 4, "closed-loop worker goroutines")
		duration = flag.Duration("duration", 10*time.Second, "measured steady-state window (0 = long-run: until SIGINT)")
		ramp     = flag.Duration("ramp", 2*time.Second, "untimed warm-up before measurement")
		files    = flag.Int("files", 8, "shared working-set files")
		fileSize = flag.Int64("file-size", 0, "initial bytes per working-set file (0 = 4x -io-size)")
		ioSize   = flag.Int("io-size", 64*int(util.KB), "bytes per read/write/append op")
		mixOpen  = flag.Int("opens", 10, "mix weight: open/close")
		mixRead  = flag.Int("reads", 60, "mix weight: random reads")
		mixWrite = flag.Int("writes", 20, "mix weight: whole-file writes")
		mixApp   = flag.Int("appends", 10, "mix weight: shared-file appends")
		budget   = flag.Float64("error-budget", 0.01, "highest tolerable failed-op fraction (concurrent unaligned appends can conflict by design)")
		rate     = flag.Float64("rate", 0, "paced open-loop target in ops/s across all workers; latency is then also measured from each op's intended start (0 = closed loop)")
		trEvery  = flag.Int("trace-every", 0, "tag every Nth op with a distributed trace and report the IDs (0 disables)")
		trSample = flag.Float64("trace-sample", 0, "sim: head-sampling rate for the embedded cluster's client tracer")
		trSlow   = flag.Duration("trace-slow", 0, "sim: trace everything and index roots slower than this (0 disables)")
		rahead   = flag.Int("readahead", 2, "sequential-read prefetch window in blocks (0 = synchronous)")
		wbehind  = flag.Int("write-behind", 2, "async commit window in blocks (0 = synchronous)")
		out      = flag.String("out", "BENCH_blaster.json", "report path (empty disables)")
		metAddr  = flag.String("metrics-addr", "", "HTTP address serving /metrics during the run (empty disables)")
		seed     = flag.Int64("seed", 1, "worker RNG seed")

		// Simulated-cluster shape.
		providers = flag.Int("providers", 4, "sim: data providers")
		metaProv  = flag.Int("meta-providers", 2, "sim: metadata providers")
		blockSz   = flag.Int64("block-size", util.MB, "sim: block size (and new-file striping unit in real mode)")
		repl      = flag.Int("replication", 1, "replication level for blaster files")

		// Real-deployment endpoints (ignored with -sim).
		vmAddr = flag.String("vmanager", "127.0.0.1:7001", "real: comma-separated version manager shard addresses")
		pmAddr = flag.String("pmanager", "127.0.0.1:7002", "real: provider manager address")
		nsAddr = flag.String("namespace", "127.0.0.1:7003", "real: namespace manager address")
		metas  = flag.String("meta", "127.0.0.1:7101", "real: comma-separated metadata provider addresses")
		mrepl  = flag.Int("meta-replication", 1, "real: DHT replication level")
		mcache = flag.Int("meta-cache", -1, "real: immutable-node cache entries (<0 default, 0 off)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("bsfsblaster: ")

	// Long-run mode (and early aborts either way): SIGINT/SIGTERM ends
	// the measurement window cleanly and the report still lands.
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("signal received; finishing the run")
		cancel()
	}()

	reg := metrics.NewRegistry()
	var fsys fs.FileSystem
	if *sim {
		cl, err := cluster.StartBlobSeer(cluster.Config{
			DataProviders: *providers,
			MetaProviders: *metaProv,
			BlockSize:     *blockSz,
			Replication:   *repl,
			MetricsAddr:   *metAddr,
			TraceSample:   *trSample,
			TraceSlow:     *trSlow,
		})
		if err != nil {
			log.Fatalf("start cluster: %v", err)
		}
		defer cl.Stop()
		clientCore, _ := cl.NewMeteredClient("", "client")
		cl.Exporter().Register("blaster", reg)
		fsys, err = bsfs.New(bsfs.Config{
			Core:             clientCore,
			NS:               namespace.NewClient(cl.Pool, cl.NSAddr),
			BlockSize:        *blockSz,
			Replication:      *repl,
			ReadaheadBlocks:  *rahead,
			WriteBehindDepth: *wbehind,
		})
		if err != nil {
			log.Fatalf("bsfs: %v", err)
		}
		if url := cl.MetricsURL(); url != "" {
			log.Printf("metrics on %s/metrics", url)
		}
	} else {
		pool := rpc.NewPool(rpc.TCPDialer)
		defer pool.Close()
		ring := dht.NewRing(splitAddrs(*metas), dht.DefaultVnodes)
		metaStore := mdtree.NewDHTStore(dht.NewClient(ring, pool, *mrepl))
		vmAddrs := splitAddrs(*vmAddr)
		if len(vmAddrs) == 0 {
			log.Fatal("-vmanager: no addresses")
		}
		clientCore := core.NewClient(core.Config{
			Pool:          pool,
			VMAddr:        vmAddrs[0],
			VMAddrs:       vmAddrs,
			PMAddr:        *pmAddr,
			MetaStore:     metaStore,
			MetaCacheSize: *mcache,
			Metrics:       reg,
		})
		var err error
		fsys, err = bsfs.New(bsfs.Config{
			Core:             clientCore,
			NS:               namespace.NewClient(pool, *nsAddr),
			BlockSize:        *blockSz,
			Replication:      *repl,
			ReadaheadBlocks:  *rahead,
			WriteBehindDepth: *wbehind,
		})
		if err != nil {
			log.Fatalf("bsfs: %v", err)
		}
		if *metAddr != "" {
			exp := metrics.NewExporter()
			exp.Register("blaster", reg)
			bound, stop, err := exp.Serve(*metAddr)
			if err != nil {
				log.Fatalf("metrics listener on %s: %v", *metAddr, err)
			}
			defer stop()
			log.Printf("metrics on http://%s/metrics", bound)
		}
	}

	mode := fmt.Sprintf("%s window", *duration)
	if *duration == 0 {
		mode = "long-run (until signal)"
	}
	loop := "closed loop"
	if *rate > 0 {
		loop = fmt.Sprintf("open loop @ %.0f ops/s", *rate)
	}
	log.Printf("blasting: %d workers (%s), mix open/read/write/append = %d/%d/%d/%d, %s",
		*workers, loop, *mixOpen, *mixRead, *mixWrite, *mixApp, mode)
	var traceHook func(context.Context) (context.Context, string)
	if *trEvery > 0 {
		traceHook = func(ctx context.Context) (context.Context, string) {
			tctx, id := core.WithTrace(ctx)
			return tctx, id.String()
		}
	}
	report, err := bench.RunBlaster(ctx, bench.BlasterConfig{
		FS:          fsys,
		Workers:     *workers,
		Duration:    *duration,
		Ramp:        *ramp,
		Files:       *files,
		FileSize:    *fileSize,
		IOSize:      *ioSize,
		MixOpen:     *mixOpen,
		MixRead:     *mixRead,
		MixWrite:    *mixWrite,
		MixAppend:   *mixApp,
		Rate:        *rate,
		ErrorBudget: *budget,
		Registry:    reg,
		Trace:       traceHook,
		TraceEvery:  *trEvery,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	log.Printf("measured %.1fs: %d ops (%.1f ops/s), read %.1f MB/s, write %.1f MB/s, error rate %.4f",
		report.Seconds, report.TotalOps, report.OpsPerSec, report.ReadMBps, report.WriteMBps, report.ErrorRate)
	for _, op := range []string{"open", "read", "write", "append"} {
		st := report.Ops[op]
		log.Printf("  %-6s count=%-8d errors=%-4d p50=%.0fµs p99=%.0fµs p999=%.0fµs",
			op, st.Count, st.Errors, st.P50us, st.P99us, st.P999us)
		if cs, ok := report.Corrected[op]; ok {
			log.Printf("  %-6s   corrected (from intended start): p50=%.0fµs p99=%.0fµs p999=%.0fµs",
				"", cs.P50us, cs.P99us, cs.P999us)
		}
	}
	for _, id := range report.TraceIDs {
		log.Printf("  traced op: %s (bsfsctl -metrics <addr> trace %s)", id, id)
	}
	if *out != "" {
		if err := report.WriteJSON(*out); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		log.Printf("report written to %s", *out)
	}
	if err := report.Check(); err != nil {
		log.Fatalf("check failed: %v", err)
	}
	log.Printf("check passed")
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
