package main

import (
	"fmt"
	"time"

	"blobseer/internal/trace"
)

// runTrace implements `bsfsctl trace <trace-id>` and `bsfsctl trace
// slow`. It polls every -metrics endpoint's /trace exporter (each
// daemon retains only its own spans), merges what each returns, and
// stitches the union into the causal tree — the cross-process join a
// single process can never see on its own.
func runTrace(endpoints []string, args []string) error {
	if len(endpoints) == 0 {
		return fmt.Errorf("trace: no endpoints (pass -metrics host:port,host:port,...)")
	}
	if len(args) != 1 {
		return fmt.Errorf("trace: want <trace-id> or slow")
	}

	if args[0] == "slow" {
		var roots []trace.Root
		for _, ep := range endpoints {
			rs, err := trace.FetchSlow(ep)
			if err != nil {
				fmt.Printf("# %s: %v\n", ep, err)
				continue
			}
			roots = append(roots, rs...)
		}
		if len(roots) == 0 {
			fmt.Println("no slow roots retained (is -trace-slow set on the daemons?)")
			return nil
		}
		fmt.Printf("%-32s %-24s %12s  %s\n", "TRACE", "OPERATION", "DURATION", "START")
		for _, r := range roots {
			line := fmt.Sprintf("%-32s %-24s %12s  %s",
				r.Trace, r.Service+"."+r.Op, r.Duration.Round(time.Microsecond), r.Start.Format(time.RFC3339Nano))
			if r.Err != "" {
				line += "  ERR " + r.Err
			}
			fmt.Println(line)
		}
		return nil
	}

	id, err := trace.ParseID(args[0])
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	var spans []trace.Span
	for _, ep := range endpoints {
		ss, err := trace.Fetch(ep, id)
		if err != nil {
			// A dead endpoint must not hide the rest of the trace.
			fmt.Printf("# %s: %v\n", ep, err)
			continue
		}
		spans = append(spans, ss...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s: no spans retained at any endpoint (evicted, unsampled, or wrong id)", id)
	}
	fmt.Print(trace.FormatTree(trace.Stitch(spans)))
	return nil
}
