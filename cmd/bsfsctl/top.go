package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"blobseer/internal/metrics"
)

// runTop polls one or more /metrics endpoints (see -metrics and
// blobseerd -metrics-addr / cluster MetricsAddr) and renders a
// cluster-wide view: per-service counters with rates computed from
// successive scrapes, gauges, and latency histogram percentiles.
// Endpoints are merged by service name, so one in-proc cluster
// endpoint and a fleet of per-daemon endpoints render identically.
// When the same name arrives from several endpoints (a fleet of
// same-role daemons all report as "provider"), each copy is shown
// qualified by its endpoint instead of the last one winning.
func runTop(endpoints []string, interval time.Duration, iters int) error {
	if len(endpoints) == 0 {
		return fmt.Errorf("top: no metrics endpoints (pass -metrics host:port[,host:port...])")
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var prev map[string]metrics.Snapshot
	for i := 0; iters <= 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		type sample struct {
			ep string
			s  metrics.Snapshot
		}
		bySvc := make(map[string][]sample)
		for _, ep := range endpoints {
			snap, err := metrics.Fetch(ep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "top: %s: %v\n", ep, err)
				continue
			}
			for svc, s := range snap {
				bySvc[svc] = append(bySvc[svc], sample{ep, s})
			}
		}
		merged := make(map[string]metrics.Snapshot)
		for svc, list := range bySvc {
			if len(list) == 1 {
				merged[svc] = list[0].s
				continue
			}
			for _, sm := range list {
				merged[svc+"@"+sm.ep] = sm.s
			}
		}
		printTop(merged, prev, interval, i > 0)
		prev = merged
	}
	return nil
}

// printTop renders one scrape. Rates need two samples, so the first
// tick shows totals only.
func printTop(cur, prev map[string]metrics.Snapshot, interval time.Duration, haveRates bool) {
	fmt.Printf("=== %s  (%d service(s)) ===\n", time.Now().Format("15:04:05"), len(cur))
	for _, svc := range sortedNames(cur) {
		s := cur[svc]
		p, hadPrev := prev[svc]
		fmt.Printf("%s\n", svc)
		for _, k := range sortedNames(s.Counters) {
			v := s.Counters[k]
			if haveRates && hadPrev {
				rate := float64(v-p.Counters[k]) / interval.Seconds()
				fmt.Printf("  %-28s %12d  %10.1f/s\n", k, v, rate)
			} else {
				fmt.Printf("  %-28s %12d\n", k, v)
			}
		}
		for _, k := range sortedNames(s.Gauges) {
			fmt.Printf("  %-28s %12d\n", k, s.Gauges[k])
		}
		for _, k := range sortedNames(s.Histograms) {
			h := s.Histograms[k]
			fmt.Printf("  %-28s %12d  p50=%s p99=%s p999=%s\n",
				k, h.Count, formatQuantile(h.P50), formatQuantile(h.P99), formatQuantile(h.P999))
		}
	}
}

// formatQuantile renders a histogram quantile: values that look like
// nanosecond latencies print as durations, small ones (batch sizes,
// depths) print as plain numbers.
func formatQuantile(v float64) string {
	if v >= 1e4 { // >= 10µs: almost certainly a latency in ns
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.0f", v)
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
