// Command bsfsctl is a client CLI for a running BSFS deployment (see
// cmd/blobseerd for launching one). It speaks to the version manager,
// provider manager, namespace manager and metadata DHT over TCP and
// exercises the same client stack Hadoop would:
//
//	bsfsctl [conn flags] mkdir /data
//	bsfsctl [conn flags] put local.bin /data/input
//	bsfsctl [conn flags] ls /data
//	bsfsctl [conn flags] stat /data/input
//	bsfsctl [conn flags] cat /data/input > copy.bin
//	bsfsctl [conn flags] append more.bin /data/input
//	bsfsctl [conn flags] versions /data/input
//	bsfsctl [conn flags] catv 2 /data/input      # read snapshot version 2
//	bsfsctl [conn flags] readat 4096 512 /data/input  # random-access read
//	bsfsctl [conn flags] locations /data/input   # block -> host map
//	bsfsctl [conn flags] cp -w 8 /data/input /data/input2   # parallel copy
//	bsfsctl [conn flags] prune 3 /data/input                # GC versions < 3
//	bsfsctl [conn flags] mv /data/input /data/old
//	bsfsctl [conn flags] rm -r /data
//	bsfsctl [conn flags] providers                # membership, liveness, repair backlog
//	bsfsctl [conn flags] decommission 127.0.0.1:7201  # drain, then retire
//	bsfsctl [conn flags] vm status                # WAL segments, last snapshot
//	bsfsctl [conn flags] vm snapshot              # force a snapshot + compact
//
// Connection flags:
//
//	-vmanager  comma-separated version manager shard addresses, shard
//	           order (default 127.0.0.1:7001)
//	-pmanager  provider manager address  (default 127.0.0.1:7002)
//	-namespace namespace manager address (default 127.0.0.1:7003)
//	-meta      comma-separated metadata provider addresses
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"time"

	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/core"
	"blobseer/internal/dht"
	"blobseer/internal/mdtree"
	"blobseer/internal/namespace"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/repair"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: bsfsctl [flags] <command> [args]

commands:
  ls <dir>                 list a directory
  mkdir <dir>              create a directory (and parents)
  put <local> <remote>     upload a local file
  get <remote> <local>     download to a local file
  cat <remote>             write file contents to stdout
  catv <version> <remote>  cat a pinned snapshot version
  readat <off> <len> <remote>  random-access read of the latest snapshot
  append <local> <remote>  append a local file's bytes
  rm [-r] <path>           delete a file or directory
  mv <src> <dst>           rename
  stat <path>              show size/type
  versions <path>          show the latest published version
  prune <keep> <path>      garbage-collect versions below <keep>
  cp [-w N] <src> <dst>    parallel server-side copy with N workers
  locations <path>         show the block->host layout
  providers                show provider membership, liveness and repair backlog
  decommission <addr>      drain a provider's blocks, then retire it
  vm status                show the version manager's WAL (segments, last snapshot)
  vm snapshot              force a WAL snapshot and compact the log
  top [interval [count]]   poll -metrics endpoints and show cluster-wide rates
  trace <trace-id>         stitch a distributed trace from every -metrics endpoint
  trace slow               list slow-sampled root operations across endpoints

flags:
`)
	flag.PrintDefaults()
}

func main() {
	var (
		vmAddr  = flag.String("vmanager", "127.0.0.1:7001", "comma-separated version manager shard addresses (shard order)")
		pmAddr  = flag.String("pmanager", "127.0.0.1:7002", "provider manager address")
		nsAddr  = flag.String("namespace", "127.0.0.1:7003", "namespace manager address")
		metas   = flag.String("meta", "127.0.0.1:7101", "comma-separated metadata provider addresses")
		blockSz = flag.Int64("block-size", 64*util.MB, "striping unit for new files")
		repl    = flag.Int("replication", 1, "replication level for new files")
		mrepl   = flag.Int("meta-replication", 1, "DHT replication level")
		mcache  = flag.Int("meta-cache", -1, "immutable-node cache entries (<0 default, 0 off)")
		host    = flag.String("host", "", "client host label (affinity experiments)")
		plane   = flag.String("data-plane", "chained", "write replication transport: chained | fanout")
		frame   = flag.Int("frame-size", 0, "chained-plane streaming frame bytes (0 = default)")
		rahead  = flag.Int("readahead", bsfs.DefaultReadaheadBlocks, "reader async prefetch window in blocks (0 = synchronous)")
		wbehind = flag.Int("write-behind", bsfs.DefaultWriteBehindDepth, "writer background block commits in flight (0 = synchronous)")
		noCache = flag.Bool("no-cache", false, "disable the BSFS block cache and streaming pipeline (ablation)")
		metEPs  = flag.String("metrics", "", "comma-separated /metrics endpoints (top command)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var dataPlane core.DataPlane
	switch *plane {
	case "chained":
		dataPlane = core.DataPlaneChained
	case "fanout":
		dataPlane = core.DataPlaneFanout
	default:
		fatal(fmt.Errorf("unknown data plane %q (want chained or fanout)", *plane))
	}

	// top only talks HTTP to /metrics endpoints — no RPC stack needed.
	if flag.Arg(0) == "top" {
		args := flag.Args()[1:]
		interval := 2 * time.Second
		iters := 0
		if len(args) > 0 {
			d, err := time.ParseDuration(args[0])
			if err != nil {
				fatal(fmt.Errorf("top: bad interval %q", args[0]))
			}
			interval = d
		}
		if len(args) > 1 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				fatal(fmt.Errorf("top: bad count %q", args[1]))
			}
			iters = n
		}
		if err := runTop(splitAddrs(*metEPs), interval, iters); err != nil {
			fatal(err)
		}
		return
	}

	// trace only talks HTTP to /trace endpoints — no RPC stack needed.
	if flag.Arg(0) == "trace" {
		if err := runTrace(splitAddrs(*metEPs), flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}

	pool := rpc.NewPool(rpc.TCPDialer)
	defer pool.Close()
	ring := dht.NewRing(splitAddrs(*metas), dht.DefaultVnodes)
	dhtClient := dht.NewClient(ring, pool, *mrepl)
	overlay := repair.NewOverlay(dhtClient)
	metaStore := mdtree.NewDHTStore(dhtClient)

	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]

	// One client surface over every version-manager shard: a plain
	// client for a single address, a Router for a comma-separated list.
	vmAddrs := splitAddrs(*vmAddr)
	if len(vmAddrs) == 0 {
		fatal(fmt.Errorf("-vmanager: no addresses"))
	}
	vm := core.NewVMClient(pool, vmAddrs[0], vmAddrs)

	// The maintenance commands speak to the managers directly — no
	// file-system layer involved.
	switch cmd {
	case "vm":
		if err := runVM(ctx, vm, args); err != nil {
			fatal(err)
		}
		return
	case "providers", "decommission":
		eng := repair.New(repair.Config{
			VM:      vm,
			PM:      pmanager.NewClient(pool, *pmAddr),
			Prov:    provider.NewClient(pool),
			Meta:    mdtree.MaybeCache(metaStore, *mcache),
			Overlay: overlay,
		})
		pm := pmanager.NewClient(pool, *pmAddr)
		if err := runAdmin(ctx, pm, eng, cmd, args); err != nil {
			fatal(err)
		}
		return
	}

	fsys, err := bsfs.New(bsfs.Config{
		Core: core.NewClient(core.Config{
			Pool:          pool,
			VMAddr:        vmAddrs[0],
			VMAddrs:       vmAddrs,
			PMAddr:        *pmAddr,
			MetaStore:     metaStore,
			Host:          *host,
			MetaCacheSize: *mcache,
			DataPlane:     dataPlane,
			FrameSize:     *frame,
			Overlay:       overlay,
		}),
		NS:               namespace.NewClient(pool, *nsAddr),
		BlockSize:        *blockSz,
		Replication:      *repl,
		ReadaheadBlocks:  *rahead,
		WriteBehindDepth: *wbehind,
		DisableCache:     *noCache,
	})
	if err != nil {
		fatal(err)
	}
	if err := run(ctx, fsys, cmd, args); err != nil {
		fatal(err)
	}
}

// vmShardClients flattens the client surface back to one client per
// shard so the maintenance commands can address each shard directly.
func vmShardClients(vm vmanager.API) []*vmanager.Client {
	switch v := vm.(type) {
	case *vmanager.Router:
		return v.Shards()
	case *vmanager.Client:
		return []*vmanager.Client{v}
	}
	return nil
}

// runVM handles the version-manager maintenance commands, reporting
// every shard in shard order.
func runVM(ctx context.Context, vm vmanager.API, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("vm: want status | snapshot")
	}
	shards := vmShardClients(vm)
	switch args[0] {
	case "status":
		for k, c := range shards {
			rep, err := c.Status(ctx)
			if err != nil {
				return fmt.Errorf("shard %d: %w", k, err)
			}
			st, ops := rep.WAL, rep.Ops
			if len(shards) > 1 {
				fmt.Printf("--- shard %d/%d ---\n", k, len(shards))
			}
			fmt.Printf("WAL directory:   %s\n", st.Dir)
			fmt.Printf("segments:        %d (seq %d..%d, %d bytes)\n",
				st.Segments, st.FirstSeq, st.LastSeq, st.LogBytes)
			if st.SnapshotSeq > 0 {
				fmt.Printf("last snapshot:   seq %d\n", st.SnapshotSeq)
			} else {
				fmt.Printf("last snapshot:   none\n")
			}
			fmt.Printf("records (since open): %d\n", st.Records)
			fmt.Printf("fsyncs (since open):  %d\n", st.Syncs)
			if st.LastSyncUnix > 0 {
				fmt.Printf("last fsync:      %s\n", time.Unix(st.LastSyncUnix, 0).Format(time.RFC3339))
			} else {
				fmt.Printf("last fsync:      never\n")
			}
			fmt.Printf("ops: create=%d assign=%d commit=%d abort=%d latest=%d wait=%d (total %d)\n",
				ops.Create, ops.Assign, ops.Commit, ops.Abort, ops.Latest, ops.Wait, ops.Total())
		}
		return nil
	case "snapshot":
		for k, c := range shards {
			if err := c.ForceSnapshot(ctx); err != nil {
				return fmt.Errorf("shard %d: %w", k, err)
			}
			st, err := c.WALStatus(ctx)
			if err != nil {
				return fmt.Errorf("shard %d: %w", k, err)
			}
			if len(shards) > 1 {
				fmt.Printf("shard %d: ", k)
			}
			fmt.Printf("snapshot written (seq %d); log compacted to %d segment(s), %d bytes\n",
				st.SnapshotSeq, st.Segments, st.LogBytes)
		}
		return nil
	}
	return fmt.Errorf("unknown vm command %q (want status | snapshot)", args[0])
}

// formatTiers renders a per-tier occupancy breakdown like
// "hot=12/48MB cold=340/1.2GB" (blocks/bytes per tier).
func formatTiers(tiers []store.TierStat) string {
	if len(tiers) == 0 {
		return "-"
	}
	parts := make([]string, len(tiers))
	for i, t := range tiers {
		parts[i] = fmt.Sprintf("%s=%d/%s", t.Name, t.Items, util.FormatBytes(t.Bytes))
	}
	return strings.Join(parts, " ")
}

// runAdmin handles the membership/repair commands.
func runAdmin(ctx context.Context, pm *pmanager.Client, eng *repair.Engine, cmd string, args []string) error {
	switch cmd {
	case "providers":
		if len(args) != 0 {
			return fmt.Errorf("providers: no arguments expected")
		}
		infos, err := pm.List(ctx)
		if err != nil {
			return err
		}
		// One combined metadata walk: the repair work list (backlog) and
		// the inventory audit (strays) share the scan.
		tasks, orphans, err := eng.Status(ctx)
		if err != nil {
			return err
		}
		// Backlog per provider: blocks whose under-replication involves
		// this provider as a (possibly sole) remaining holder or source.
		backlog := make(map[string]int)
		for _, t := range tasks {
			for _, a := range t.Sources {
				backlog[a]++
			}
		}
		// Providers on a tiered backend report per-tier occupancy; show
		// the breakdown column when any row carries one.
		tiered := false
		for _, in := range infos {
			if len(in.Tiers) > 0 {
				tiered = true
				break
			}
		}
		fmt.Printf("%-24s %-12s %8s %12s %6s %9s %8s %6s",
			"ADDRESS", "HOST", "BLOCKS", "BYTES", "ALIVE", "DRAINING", "BACKLOG", "STRAY")
		if tiered {
			fmt.Printf("  %s", "TIERS")
		}
		fmt.Println()
		for _, in := range infos {
			fmt.Printf("%-24s %-12s %8d %12d %6v %9v %8d %6d",
				in.Addr, in.Host, in.Blocks, in.Bytes, in.Alive, in.Draining, backlog[in.Addr], orphans[in.Addr])
			if tiered {
				fmt.Printf("  %s", formatTiers(in.Tiers))
			}
			fmt.Println()
		}
		fmt.Printf("repair backlog: %d under-replicated block(s)\n", len(tasks))
		return nil

	case "decommission":
		if len(args) != 1 {
			return fmt.Errorf("decommission: want <provider-addr>")
		}
		rep, err := eng.Decommission(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("decommissioned %s: %d block(s) re-replicated (%d copies) in %s; provider retired\n",
			args[0], rep.UnderReplicated, rep.Copies, rep.Elapsed.Round(time.Millisecond))
		return nil
	}
	return fmt.Errorf("unknown admin command %q", cmd)
}

func run(ctx context.Context, fsys *bsfs.FS, cmd string, args []string) error {
	switch cmd {
	case "ls":
		if len(args) != 1 {
			return fmt.Errorf("ls: want <dir>")
		}
		sts, err := fsys.List(ctx, args[0])
		if err != nil {
			return err
		}
		for _, st := range sts {
			kind := "-"
			if st.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %12d  %s\n", kind, st.Size, st.Path)
		}
		return nil

	case "mkdir":
		if len(args) != 1 {
			return fmt.Errorf("mkdir: want <dir>")
		}
		return fsys.Mkdirs(ctx, args[0])

	case "put", "append":
		if len(args) != 2 {
			return fmt.Errorf("%s: want <local> <remote>", cmd)
		}
		in, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer in.Close()
		var w io.WriteCloser
		if cmd == "put" {
			w, err = fsys.Create(ctx, args[1], true)
		} else {
			w, err = fsys.Append(ctx, args[1])
		}
		if err != nil {
			return err
		}
		n, err := io.Copy(w, in)
		if err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d bytes -> %s\n", cmd, n, args[1])
		return nil

	case "get":
		if len(args) != 2 {
			return fmt.Errorf("get: want <remote> <local>")
		}
		r, err := fsys.Open(ctx, args[0])
		if err != nil {
			return err
		}
		defer r.Close()
		out, err := os.Create(args[1])
		if err != nil {
			return err
		}
		n, err := io.Copy(out, r)
		if err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("get: %d bytes -> %s\n", n, args[1])
		return nil

	case "cat":
		if len(args) != 1 {
			return fmt.Errorf("cat: want <remote>")
		}
		r, err := fsys.Open(ctx, args[0])
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = io.Copy(os.Stdout, r)
		return err

	case "catv":
		if len(args) != 2 {
			return fmt.Errorf("catv: want <version> <remote>")
		}
		v, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("catv: bad version %q", args[0])
		}
		// OpenVersion IS the handle path now (Blob.Snapshot +
		// Snapshot.NewReader under the hood) and respects the
		// -readahead/-no-cache tuning flags.
		r, err := fsys.OpenVersion(ctx, args[1], v)
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = io.Copy(os.Stdout, r)
		return err

	case "readat":
		if len(args) != 3 {
			return fmt.Errorf("readat: want <offset> <length> <remote>")
		}
		off, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("readat: bad offset %q", args[0])
		}
		length, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil || length < 0 {
			return fmt.Errorf("readat: bad length %q", args[1])
		}
		// Random access without a stream: one pinned snapshot, one
		// zero-copy ReadAt into a caller-owned buffer.
		b, err := fsys.OpenBlob(ctx, args[2])
		if err != nil {
			return err
		}
		s, err := b.Latest(ctx)
		if err != nil {
			return err
		}
		buf := make([]byte, length)
		n, err := s.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return err
		}
		_, werr := os.Stdout.Write(buf[:n])
		return werr

	case "rm":
		recursive := false
		if len(args) > 0 && args[0] == "-r" {
			recursive = true
			args = args[1:]
		}
		if len(args) != 1 {
			return fmt.Errorf("rm: want [-r] <path>")
		}
		return fsys.Delete(ctx, args[0], recursive)

	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("mv: want <src> <dst>")
		}
		return fsys.Rename(ctx, args[0], args[1])

	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("stat: want <path>")
		}
		st, err := fsys.Stat(ctx, args[0])
		if err != nil {
			return err
		}
		kind := "file"
		if st.IsDir {
			kind = "directory"
		}
		fmt.Printf("%s\t%s\t%d bytes\n", st.Path, kind, st.Size)
		return nil

	case "versions":
		if len(args) != 1 {
			return fmt.Errorf("versions: want <path>")
		}
		v, err := fsys.Versions(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: latest published version %d\n", args[0], v)
		return nil

	case "prune":
		if len(args) != 2 {
			return fmt.Errorf("prune: want <keep-version> <path>")
		}
		keep, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("prune: bad version %q", args[0])
		}
		st, err := fsys.Prune(ctx, args[1], blob.Version(keep))
		if err != nil {
			return err
		}
		fmt.Printf("pruned versions [%d, %d): freed %d metadata nodes, %d block replicas\n",
			st.From, st.To, st.NodesFreed, st.BlocksFreed)
		return nil

	case "cp":
		workers := 4
		if len(args) > 0 && args[0] == "-w" {
			if len(args) < 2 {
				return fmt.Errorf("cp: -w wants a worker count")
			}
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				return fmt.Errorf("cp: bad worker count %q", args[1])
			}
			workers = n
			args = args[2:]
		}
		if len(args) != 2 {
			return fmt.Errorf("cp: want [-w N] <src> <dst>")
		}
		if err := fsys.ParallelCopy(ctx, args[0], args[1], workers); err != nil {
			return err
		}
		st, err := fsys.Stat(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("cp: %d bytes -> %s (%d concurrent writers)\n", st.Size, args[1], workers)
		return nil

	case "locations":
		if len(args) != 1 {
			return fmt.Errorf("locations: want <path>")
		}
		st, err := fsys.Stat(ctx, args[0])
		if err != nil {
			return err
		}
		locs, err := fsys.Locations(ctx, args[0], 0, st.Size)
		if err != nil {
			return err
		}
		for _, l := range locs {
			fmt.Printf("[%12d +%12d]  %s\n", l.Off, l.Len, strings.Join(l.Hosts, ","))
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bsfsctl: %v\n", err)
	os.Exit(1)
}
