// Command mrrun runs one of the paper's Map/Reduce applications on an
// embedded cluster: it deploys the chosen storage layer (BSFS or the
// HDFS-like baseline), a jobtracker and tasktrackers co-located with
// the storage daemons, submits the job, and prints the outputs plus the
// locality statistics of Section V-E (local vs remote maps).
//
//	mrrun -app randomtextwriter -backend bsfs -mappers 8 -bytes 1048576
//	mrrun -app grep      -backend hdfs -generate 16777216 -pattern seer
//	mrrun -app wordcount -backend bsfs -generate 4194304
//
// The grep and wordcount runs first generate a synthetic input file of
// -generate bytes of random sentences, mirroring the paper's boot-up
// phase.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"time"

	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
	"blobseer/internal/util"
)

func main() {
	var (
		app      = flag.String("app", "grep", "application: grep | wordcount | randomtextwriter")
		backend  = flag.String("backend", "bsfs", "storage layer: bsfs | hdfs")
		nodes    = flag.Int("nodes", 4, "co-deployed storage/tasktracker machines")
		blockSz  = flag.Int64("block-size", 4*util.MB, "chunk size (the paper uses 64 MB; default is laptop-sized)")
		mappers  = flag.Int("mappers", 4, "randomtextwriter: number of map tasks")
		bytes    = flag.Int64("bytes", util.MB, "randomtextwriter: output bytes per mapper")
		generate = flag.Int64("generate", 8*util.MB, "grep/wordcount: synthetic input size to generate")
		pattern  = flag.String("pattern", "blob", "grep: substring to count")
		reduces  = flag.Int("reduces", 1, "number of reduce tasks")
		show     = flag.Int("show", 10, "output lines to print per part file")
		rahead   = flag.Int("readahead", bsfs.DefaultReadaheadBlocks, "bsfs: reader async prefetch window in blocks (0 = synchronous)")
		wbehind  = flag.Int("write-behind", bsfs.DefaultWriteBehindDepth, "bsfs: writer background block commits in flight (0 = synchronous)")
		noCache  = flag.Bool("no-cache", false, "bsfs: disable the block cache and streaming pipeline (ablation)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("mrrun: ")

	ctx := context.Background()

	// Deploy the storage layer with one synthetic host per node, then
	// the Map/Reduce engine co-deployed on the same hosts.
	var fsFor func(host string) (fs.FileSystem, error)
	switch *backend {
	case "bsfs":
		// cluster.Config treats 0 as "use the default window", so map
		// the CLI's "0 = synchronous" onto the explicit disable value.
		ra, wb := *rahead, *wbehind
		if ra == 0 {
			ra = -1
		}
		if wb == 0 {
			wb = -1
		}
		cl, err := cluster.StartBlobSeer(cluster.Config{
			DataProviders:    *nodes,
			BlockSize:        *blockSz,
			ReadaheadBlocks:  ra,
			WriteBehindDepth: wb,
			DisableCache:     *noCache,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Stop()
		fsFor = func(host string) (fs.FileSystem, error) { return cl.NewBSFS(host) }
	case "hdfs":
		h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: *nodes, BlockSize: *blockSz})
		if err != nil {
			log.Fatal(err)
		}
		defer h.Stop()
		fsFor = func(host string) (fs.FileSystem, error) { return h.NewFS(host) }
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	mr, err := cluster.StartMapRed(cluster.MapRedConfig{Trackers: *nodes, FSFor: fsFor})
	if err != nil {
		log.Fatal(err)
	}
	defer mr.Stop()

	conf := mapred.JobConf{
		Name:       *app,
		App:        *app,
		OutputDir:  "/out",
		NumReduces: *reduces,
		Args:       map[string]string{},
	}
	switch *app {
	case apps.RandomTextWriterApp:
		conf.NumReduces = 0
		conf.Args["mappers"] = strconv.Itoa(*mappers)
		conf.Args["bytesPerMapper"] = strconv.FormatInt(*bytes, 10)
	case apps.GrepApp, apps.WordCountApp:
		fsys, err := fsFor("")
		if err != nil {
			log.Fatal(err)
		}
		if err := writeInput(ctx, fsys, "/input/data.txt", *generate); err != nil {
			log.Fatal(err)
		}
		log.Printf("generated %d bytes of input at /input/data.txt", *generate)
		conf.InputPaths = []string{"/input/data.txt"}
		if *app == apps.GrepApp {
			conf.Args["pattern"] = *pattern
		}
	default:
		log.Fatalf("unknown app %q", *app)
	}

	jt := mr.Client()
	start := time.Now()
	jobID, err := jt.Submit(ctx, conf)
	if err != nil {
		log.Fatal(err)
	}
	var st mapred.JobStatus
	for {
		st, err = jt.Status(ctx, jobID)
		if err != nil {
			log.Fatal(err)
		}
		if st.State == mapred.JobSucceeded || st.State == mapred.JobFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	if st.State == mapred.JobFailed {
		log.Fatalf("job failed: %s", st.Err)
	}
	fmt.Printf("job %d (%s on %s) completed in %v\n", jobID, *app, *backend, elapsed.Round(time.Millisecond))
	fmt.Printf("maps: %d total, %d node-local, %d remote; reduces: %d\n",
		st.MapsTotal, st.LocalMaps, st.RemoteMaps, st.ReducesDone)

	fsys, err := fsFor("")
	if err != nil {
		log.Fatal(err)
	}
	entries, err := fsys.List(ctx, "/out")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir {
			continue
		}
		fmt.Printf("--- %s (%d bytes) ---\n", e.Path, e.Size)
		if err := head(ctx, fsys, e.Path, *show); err != nil {
			log.Fatal(err)
		}
	}
}

// writeInput fills path with random sentences from the shared word
// list, one line at a time.
func writeInput(ctx context.Context, fsys fs.FileSystem, path string, size int64) error {
	w, err := fsys.Create(ctx, path, true)
	if err != nil {
		return err
	}
	rng := util.NewSplitMix64(7)
	var sb strings.Builder
	written := int64(0)
	for written < size {
		sb.Reset()
		n := 4 + rng.Intn(9)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(apps.Words[rng.Intn(len(apps.Words))])
		}
		sb.WriteByte('\n')
		c, err := io.WriteString(w, sb.String())
		if err != nil {
			w.Close()
			return err
		}
		written += int64(c)
	}
	return w.Close()
}

// head prints up to n lines of a file.
func head(ctx context.Context, fsys fs.FileSystem, path string, n int) error {
	r, err := fsys.Open(ctx, path)
	if err != nil {
		return err
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i, line := range lines {
		if i >= n {
			fmt.Printf("... (%d more lines)\n", len(lines)-n)
			break
		}
		fmt.Println(line)
	}
	return nil
}
