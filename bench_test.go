// Benchmarks: one per figure of the paper's evaluation (Section V),
// one per ablation of DESIGN.md, and real-cluster microbenchmarks of
// the client stack. The Fig* benchmarks run the simulated Grid'5000
// deployment at the paper's 270-node scale; a full sweep of every
// figure is what cmd/figures prints. The remaining benchmarks measure
// the real (in-process) daemons with testing.B semantics.
package blobseer_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"blobseer"
	"blobseer/internal/bench"
	"blobseer/internal/bsfs"
	"blobseer/internal/namespace"
	"blobseer/internal/util"
)

// report folds a figure's series into benchmark metrics so `go test
// -bench` output carries the reproduced numbers.
func report(b *testing.B, series []bench.Series) {
	b.Helper()
	for _, s := range series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("%s_x%g", s.Name, p.X))
		}
	}
}

// --- Figures (simulated Grid'5000 testbed, paper topology) ---

func BenchmarkFig3aSingleWriter(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig3a([]float64{1, 16})
	}
	report(b, out)
}

func BenchmarkFig3bLoadBalance(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig3b([]float64{1, 16})
	}
	report(b, out)
}

func BenchmarkFig4ConcurrentReads(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig4([]int{50, 250})
	}
	report(b, out)
}

func BenchmarkFig5ConcurrentAppends(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig5([]int{50, 250})
	}
	report(b, out)
}

func BenchmarkFig6aRandomTextWriter(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig6a([]int{50, 1})
	}
	report(b, out)
}

func BenchmarkFig6bDistributedGrep(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.Fig6b([]float64{6.4, 12.8})
	}
	report(b, out)
}

// --- Ablations (design choices called out in DESIGN.md) ---

func BenchmarkAblationPlacement(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationPlacement(150)
	}
	report(b, out)
}

func BenchmarkAblationMetadataProviders(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationMetadataProviders(150, []int{1, 5, 20})
	}
	report(b, out)
}

func BenchmarkAblationVMService(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationVMService(150, []float64{0.5, 2, 10, 50})
	}
	report(b, out)
}

func BenchmarkAblationBlockSize(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationBlockSize(4, []int{16, 32, 64, 128})
	}
	report(b, out)
}

func BenchmarkAblationReplication(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationReplication(4, []int{1, 2, 3})
	}
	report(b, out)
}

// BenchmarkAblationRepair measures the kill-provider availability
// experiment: R=3 chunk readers healthy, after one provider dies, and
// after three die — with and without the self-healing repair pass in
// between. The lost-blocks series is the availability claim: self-heal
// keeps it at zero through failures that strip every original replica.
func BenchmarkAblationRepair(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationRepair(64, 16)
	}
	report(b, out)
}

// BenchmarkAblationTiering measures the tiered hot/cold store engine on
// real fs backends: hot-path read overhead vs a plain fs store, the
// cold-read + promotion cost after demoting every block, and the
// restored hot rate on re-read. The summary ratios are the acceptance
// claim: every demoted block readable, hot path within 10% of plain fs.
func BenchmarkAblationTiering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.TieringBenchRun(true)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		report(b, r.Throughput)
		b.ReportMetric(r.HotRatio, "hot_ratio")
		b.ReportMetric(r.PromotedRatio, "promoted_ratio")
		b.ReportMetric(r.Readable, "readable")
	}
}

// BenchmarkAblationStreaming measures the client streaming pipeline on
// the simulated paper topology: a 16 x 64 MB stream written and read
// with the readahead/write-behind window at 0 (the synchronous client)
// and open.
func BenchmarkAblationStreaming(b *testing.B) {
	var out []bench.Series
	for i := 0; i < b.N; i++ {
		out = bench.AblationStreaming(16, []int{0, 2, 4})
	}
	report(b, out)
}

// BenchmarkAblationPrefetch measures the real BSFS client's prefetch /
// write-behind cache (Section IV-B): a Hadoop-style sequence of 4 KB
// reads over a striped file, with the cache enabled vs disabled.
func BenchmarkAblationPrefetch(b *testing.B) {
	const (
		blockSize = 256 * util.KB
		fileSize  = 16 * blockSize
	)
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: blockSize})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		b.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/bench/data", true)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, blockSize)
	for off := int64(0); off < fileSize; off += blockSize {
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name         string
		disableCache bool
		readahead    int
	}{{"pipelined", false, 3}, {"prefetch", false, 0}, {"nocache", true, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			fsys, err := bsfs.New(bsfs.Config{
				Core:            cl.NewClient(""),
				NS:              namespace.NewClient(cl.Pool, cl.NSAddr),
				BlockSize:       blockSize,
				Replication:     1,
				ReadaheadBlocks: mode.readahead,
				DisableCache:    mode.disableCache,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(fileSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := fsys.Open(ctx, "/bench/data")
				if err != nil {
					b.Fatal(err)
				}
				p := make([]byte, 4*util.KB)
				for {
					if _, err := r.Read(p); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				r.Close()
			}
		})
	}
}

// --- Real-cluster client-path microbenchmarks ---

func BenchmarkBSFSWrite(b *testing.B) {
	const blockSize = 256 * util.KB
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: blockSize})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, blockSize)
	b.SetBytes(blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := fsys.Create(ctx, fmt.Sprintf("/bench/w%d", i), true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSFSAppend(b *testing.B) {
	const blockSize = 256 * util.KB
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: blockSize})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, blockSize, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, blockSize)
	b.SetBytes(blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Append(ctx, m.ID, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSFSRead(b *testing.B) {
	const blockSize = 256 * util.KB
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: blockSize})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, blockSize, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 8*blockSize)
	v, err := client.Append(ctx, m.ID, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read(ctx, m.ID, v, 0, int64(len(data))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHDFSWrite(b *testing.B) {
	const blockSize = 256 * util.KB
	h, err := blobseer.StartHDFS(blobseer.HDFSConfig{Datanodes: 4, BlockSize: blockSize})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Stop()
	ctx := context.Background()
	fsys, err := h.NewFS("")
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, blockSize)
	b.SetBytes(blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := fsys.Create(ctx, fmt.Sprintf("/bench/w%d", i), true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
