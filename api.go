// Package blobseer is a from-scratch Go reproduction of BlobSeer, the
// concurrency-optimized versioning data store of Nicolae, Moise,
// Antoniu, Bougé and Dorier: "BlobSeer: Bringing High Throughput under
// Heavy Concurrency to Hadoop Map-Reduce Applications" (IPDPS 2010) —
// together with every system the paper's evaluation depends on: the
// BSFS file-system layer, an HDFS-like baseline, a Hadoop-like
// Map/Reduce engine, and a simulated Grid'5000 testbed for reproducing
// the paper's figures at 270-node scale.
//
// This facade re-exports the embedded-cluster entry points and client
// types a downstream application needs. The quickest start:
//
//	cl, _ := blobseer.Start(blobseer.Config{DataProviders: 4})
//	defer cl.Stop()
//	fs, _ := cl.NewBSFS("")
//	w, _ := fs.Create(ctx, "/hello", true)
//	w.Write([]byte("versioned, concurrent, lock-free"))
//	w.Close()
//
// See examples/ for complete programs and cmd/figures for the
// experiment harness.
package blobseer

import (
	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/fs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
	"blobseer/internal/placement"
	"blobseer/internal/stream"
)

// Core data-model types.
type (
	// BlobID identifies a BLOB.
	BlobID = blob.ID
	// Version identifies a snapshot of a BLOB.
	Version = blob.Version
	// BlobMeta is a blob's static configuration.
	BlobMeta = blob.Meta
)

// Handle types — the primary client surface. A Blob (from
// Client.OpenBlob or Client.CreateBlob) pins a BLOB's static metadata
// and owns writes, appends and version queries; a Snapshot (from
// Blob.Latest or Blob.Snapshot) pins one published (version, size)
// pair and serves zero-copy io.ReaderAt reads plus streaming readers,
// with no per-call metadata round-trips. The flat Client.Read/Write/
// Locations calls remain as compatibility shims over this path.
type (
	// Blob is a handle on one BLOB.
	Blob = core.Blob
	// Snapshot is a pinned, immutable published version of a BLOB; it
	// implements io.ReaderAt.
	Snapshot = core.Snapshot
	// Location describes where one piece of a blob range physically
	// lives.
	Location = core.Location
	// ReaderOptions tunes Snapshot.NewReader streaming (readahead).
	ReaderOptions = core.ReaderOptions
	// WriterOptions tunes Blob.NewWriter streaming (write-behind).
	WriterOptions = core.WriterOptions
	// StreamReader is the sequential snapshot reader of the shared
	// streaming engine (what Snapshot.NewReader and BSFS Open return).
	StreamReader = stream.Reader
	// StreamWriter is the write-behind blob writer of the shared
	// streaming engine (what Blob.NewWriter and BSFS Create return).
	StreamWriter = stream.Writer
	// ReadStats counts a stream reader's pipeline activity.
	ReadStats = stream.ReadStats
)

// Error taxonomy, re-exported so applications can errors.Is against
// the facade alone.
var (
	// ErrNotPublished: a read named a version newer than the latest
	// published snapshot.
	ErrNotPublished = core.ErrNotPublished
	// ErrNegativeOffset: ReadAt was handed an offset below zero.
	ErrNegativeOffset = core.ErrNegativeOffset
	// ErrNotFound: no such file or directory.
	ErrNotFound = fs.ErrNotFound
	// ErrExists: Create without overwrite hit an existing file.
	ErrExists = fs.ErrExists
	// ErrIsDir / ErrNotDir / ErrNotEmpty: namespace shape mismatches.
	ErrIsDir    = fs.ErrIsDir
	ErrNotDir   = fs.ErrNotDir
	ErrNotEmpty = fs.ErrNotEmpty
	// ErrNoAppend: the storage layer cannot append (HDFS, Section V-F).
	ErrNoAppend = fs.ErrNoAppend
	// ErrClosed matches any operation on a closed stream handle;
	// ErrReaderClosed and ErrWriterClosed are its two specific sides.
	ErrClosed       = stream.ErrClosed
	ErrReaderClosed = stream.ErrReaderClosed
	ErrWriterClosed = stream.ErrWriterClosed
)

// Deployment types.
type (
	// Config describes a BlobSeer deployment.
	Config = cluster.Config
	// Cluster is a running in-process BlobSeer deployment.
	Cluster = cluster.BlobSeer
	// HDFSConfig describes the HDFS-like baseline deployment.
	HDFSConfig = cluster.HDFSConfig
	// HDFSCluster is a running baseline deployment.
	HDFSCluster = cluster.HDFS
	// MapRedConfig describes a Map/Reduce deployment.
	MapRedConfig = cluster.MapRedConfig
	// MapRedCluster is a running Map/Reduce deployment.
	MapRedCluster = cluster.MapRed
)

// Client and file-system types.
type (
	// Client is the low-level BlobSeer client (BLOB API).
	Client = core.Client
	// BSFS is the BlobSeer File System client.
	BSFS = bsfs.FS
	// HDFS is the baseline file-system client.
	HDFS = hdfs.FS
	// FileSystem is the storage-neutral API Map/Reduce runs on.
	FileSystem = fs.FileSystem
	// FileStatus describes a file or directory.
	FileStatus = fs.FileStatus
	// BlockLocation exposes physical data layout for scheduling.
	BlockLocation = fs.BlockLocation
	// JobConf describes a Map/Reduce job.
	JobConf = mapred.JobConf
	// JobStatus is a Map/Reduce job's progress snapshot.
	JobStatus = mapred.JobStatus
)

// NoVersion is the version of the empty initial snapshot; passing it to
// read APIs selects the latest published snapshot.
const NoVersion = blob.NoVersion

// Names of the Map/Reduce applications shipped with the engine
// (Section V-G plus the classic wordcount); importing this package
// registers all of them.
const (
	AppRandomTextWriter = apps.RandomTextWriterApp
	AppGrep             = apps.GrepApp
	AppWordCount        = apps.WordCountApp
)

// Job states reported by JobStatus.
const (
	JobRunning   = mapred.JobRunning
	JobSucceeded = mapred.JobSucceeded
	JobFailed    = mapred.JobFailed
)

// Start deploys a complete BlobSeer instance (version manager, provider
// manager, namespace manager, data and metadata providers) inside this
// process.
func Start(cfg Config) (*Cluster, error) { return cluster.StartBlobSeer(cfg) }

// StartHDFS deploys the HDFS-like baseline (namenode + datanodes).
func StartHDFS(cfg HDFSConfig) (*HDFSCluster, error) { return cluster.StartHDFS(cfg) }

// StartMapRed deploys a jobtracker and tasktrackers over any storage
// layer.
func StartMapRed(cfg MapRedConfig) (*MapRedCluster, error) { return cluster.StartMapRed(cfg) }

// Placement strategies, exported for deployment configuration.
var (
	// NewRoundRobin is BlobSeer's default balanced placement.
	NewRoundRobin = placement.NewRoundRobin
	// NewRandom places blocks uniformly at random.
	NewRandom = placement.NewRandom
	// NewRandomSticky models HDFS 0.20's clustering placement.
	NewRandomSticky = placement.NewRandomSticky
	// NewLeastLoaded greedily fills the emptiest provider.
	NewLeastLoaded = placement.NewLeastLoaded
)
