// Package blobseer is a from-scratch Go reproduction of BlobSeer, the
// concurrency-optimized versioning data store of Nicolae, Moise,
// Antoniu, Bougé and Dorier: "BlobSeer: Bringing High Throughput under
// Heavy Concurrency to Hadoop Map-Reduce Applications" (IPDPS 2010) —
// together with every system the paper's evaluation depends on: the
// BSFS file-system layer, an HDFS-like baseline, a Hadoop-like
// Map/Reduce engine, and a simulated Grid'5000 testbed for reproducing
// the paper's figures at 270-node scale.
//
// This facade re-exports the embedded-cluster entry points and client
// types a downstream application needs. The quickest start:
//
//	cl, _ := blobseer.Start(blobseer.Config{DataProviders: 4})
//	defer cl.Stop()
//	fs, _ := cl.NewBSFS("")
//	w, _ := fs.Create(ctx, "/hello", true)
//	w.Write([]byte("versioned, concurrent, lock-free"))
//	w.Close()
//
// See examples/ for complete programs and cmd/figures for the
// experiment harness.
package blobseer

import (
	"blobseer/internal/blob"
	"blobseer/internal/bsfs"
	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/fs"
	"blobseer/internal/hdfs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
	"blobseer/internal/placement"
)

// Core data-model types.
type (
	// BlobID identifies a BLOB.
	BlobID = blob.ID
	// Version identifies a snapshot of a BLOB.
	Version = blob.Version
	// BlobMeta is a blob's static configuration.
	BlobMeta = blob.Meta
)

// Deployment types.
type (
	// Config describes a BlobSeer deployment.
	Config = cluster.Config
	// Cluster is a running in-process BlobSeer deployment.
	Cluster = cluster.BlobSeer
	// HDFSConfig describes the HDFS-like baseline deployment.
	HDFSConfig = cluster.HDFSConfig
	// HDFSCluster is a running baseline deployment.
	HDFSCluster = cluster.HDFS
	// MapRedConfig describes a Map/Reduce deployment.
	MapRedConfig = cluster.MapRedConfig
	// MapRedCluster is a running Map/Reduce deployment.
	MapRedCluster = cluster.MapRed
)

// Client and file-system types.
type (
	// Client is the low-level BlobSeer client (BLOB API).
	Client = core.Client
	// BSFS is the BlobSeer File System client.
	BSFS = bsfs.FS
	// HDFS is the baseline file-system client.
	HDFS = hdfs.FS
	// FileSystem is the storage-neutral API Map/Reduce runs on.
	FileSystem = fs.FileSystem
	// FileStatus describes a file or directory.
	FileStatus = fs.FileStatus
	// BlockLocation exposes physical data layout for scheduling.
	BlockLocation = fs.BlockLocation
	// JobConf describes a Map/Reduce job.
	JobConf = mapred.JobConf
	// JobStatus is a Map/Reduce job's progress snapshot.
	JobStatus = mapred.JobStatus
)

// NoVersion is the version of the empty initial snapshot; passing it to
// read APIs selects the latest published snapshot.
const NoVersion = blob.NoVersion

// Names of the Map/Reduce applications shipped with the engine
// (Section V-G plus the classic wordcount); importing this package
// registers all of them.
const (
	AppRandomTextWriter = apps.RandomTextWriterApp
	AppGrep             = apps.GrepApp
	AppWordCount        = apps.WordCountApp
)

// Job states reported by JobStatus.
const (
	JobRunning   = mapred.JobRunning
	JobSucceeded = mapred.JobSucceeded
	JobFailed    = mapred.JobFailed
)

// Start deploys a complete BlobSeer instance (version manager, provider
// manager, namespace manager, data and metadata providers) inside this
// process.
func Start(cfg Config) (*Cluster, error) { return cluster.StartBlobSeer(cfg) }

// StartHDFS deploys the HDFS-like baseline (namenode + datanodes).
func StartHDFS(cfg HDFSConfig) (*HDFSCluster, error) { return cluster.StartHDFS(cfg) }

// StartMapRed deploys a jobtracker and tasktrackers over any storage
// layer.
func StartMapRed(cfg MapRedConfig) (*MapRedCluster, error) { return cluster.StartMapRed(cfg) }

// Placement strategies, exported for deployment configuration.
var (
	// NewRoundRobin is BlobSeer's default balanced placement.
	NewRoundRobin = placement.NewRoundRobin
	// NewRandom places blocks uniformly at random.
	NewRandom = placement.NewRandom
	// NewRandomSticky models HDFS 0.20's clustering placement.
	NewRandomSticky = placement.NewRandomSticky
	// NewLeastLoaded greedily fills the emptiest provider.
	NewLeastLoaded = placement.NewLeastLoaded
)
